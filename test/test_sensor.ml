(* Unit tests for Acq_sensor: energy metering, the radio model, trace
   replay, motes, the network, and the end-to-end runtime loop. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module En = Acq_sensor.Energy
module Radio = Acq_sensor.Radio
module Env = Acq_sensor.Environment
module Mote = Acq_sensor.Mote
module Net = Acq_sensor.Network
module RT = Acq_sensor.Runtime

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Energy *)

let test_energy_accounting () =
  let e = En.create () in
  En.add_acquisition e 100.0;
  En.charge_tx e ~bytes:10 ~per_byte:0.5;
  En.charge_rx e ~bytes:4 ~per_byte:0.5;
  check_float "acquisition" 100.0 e.En.acquisition;
  check_float "tx" 5.0 e.En.radio_tx;
  check_float "rx" 2.0 e.En.radio_rx;
  check_float "total" 107.0 (En.total e);
  let e2 = En.merge e e in
  check_float "merge doubles" 214.0 (En.total e2);
  En.reset e;
  check_float "reset" 0.0 (En.total e)

(* ------------------------------------------------------------------ *)
(* Radio *)

let test_radio_costs () =
  let r = { Radio.per_byte = 0.1; header_bytes = 8 } in
  (* 12-byte payload + 8 header = 20 bytes; 2 hops; tx+rx each hop. *)
  check_float "message cost" (2.0 *. 40.0 *. 0.1)
    (Radio.message_cost r ~payload_bytes:12 ~hops:2);
  Alcotest.(check int) "result bytes" 6 (Radio.result_bytes r ~n_attrs:3);
  check_float "zero hops clamps to 1"
    (Radio.message_cost r ~payload_bytes:12 ~hops:1)
    (Radio.message_cost r ~payload_bytes:12 ~hops:0)

(* ------------------------------------------------------------------ *)
(* Environment *)

let lab_like_schema () =
  S.create
    [
      A.discrete ~name:"nodeid" ~cost:1.0 ~domain:3;
      A.discrete ~name:"temp" ~cost:100.0 ~domain:4;
    ]

let test_env_with_nodeid () =
  let schema = lab_like_schema () in
  let ds =
    DS.create schema [| [| 0; 1 |]; [| 2; 3 |]; [| 1; 0 |] |]
  in
  let env = Env.replay ds in
  Alcotest.(check int) "epochs" 3 (Env.n_epochs env);
  Alcotest.(check int) "mote from nodeid" 2 (Env.mote_of_epoch env 1);
  Alcotest.(check int) "value" 3 (Env.value env ~epoch:1 ~attr:1);
  Alcotest.(check (array int)) "tuple" [| 1; 0 |] (Env.tuple env ~epoch:2)

let test_env_without_nodeid () =
  let schema =
    S.create [ A.discrete ~name:"temp0" ~cost:100.0 ~domain:4 ]
  in
  let ds = DS.create schema [| [| 1 |]; [| 2 |] |] in
  let env = Env.replay ds in
  Alcotest.(check int) "wide schema uses mote 0" 0 (Env.mote_of_epoch env 1)

(* ------------------------------------------------------------------ *)
(* Mote *)

let mote_fixture () =
  let schema = lab_like_schema () in
  let q = Q.create schema [ Pred.inside ~attr:1 ~lo:2 ~hi:3 ] in
  let costs = S.costs schema in
  let radio = { Radio.per_byte = 0.1; header_bytes = 8 } in
  let m = Mote.create ~id:0 ~hops:2 ~radio () in
  (q, costs, m)

let test_mote_requires_plan () =
  let q, costs, m = mote_fixture () in
  (try
     ignore (Mote.run_epoch m q ~costs ~lookup:(fun _ -> 0));
     Alcotest.fail "expected failure without plan"
   with Failure _ -> ())

let test_mote_meters_acquisition () =
  let q, costs, m = mote_fixture () in
  Mote.install_plan m (Plan.sequential [ 0 ]) ~bytes:10;
  let rx_after_install = (Mote.energy m).En.radio_rx in
  Alcotest.(check bool) "dissemination charged" true (rx_after_install > 0.0);
  let r = Mote.run_epoch m q ~costs ~lookup:(fun _ -> 1) in
  Alcotest.(check bool) "rejected tuple" false r.Mote.verdict;
  check_float "temp acquired" 100.0 r.Mote.acquisition_cost;
  check_float "meter matches" 100.0 (Mote.energy m).En.acquisition;
  check_float "no result tx for rejected" 0.0 (Mote.energy m).En.radio_tx

let test_mote_transmits_matches () =
  let q, costs, m = mote_fixture () in
  Mote.install_plan m (Plan.sequential [ 0 ]) ~bytes:10;
  let r = Mote.run_epoch m q ~costs ~lookup:(fun _ -> 2) in
  Alcotest.(check bool) "matched" true r.Mote.verdict;
  Alcotest.(check bool) "result transmitted" true
    ((Mote.energy m).En.radio_tx > 0.0)

(* ------------------------------------------------------------------ *)
(* Network *)

let test_network_topology () =
  let net = Net.create ~n_motes:7 () in
  Alcotest.(check int) "size" 7 (Net.n_motes net);
  Alcotest.(check int) "mote 0 close" 1 (Mote.hops (Net.mote net 0));
  Alcotest.(check bool) "deeper motes further" true
    (Mote.hops (Net.mote net 6) > Mote.hops (Net.mote net 0))

let test_network_dissemination () =
  let net = Net.create ~n_motes:3 () in
  let plan = Plan.sequential [ 0; 1 ] in
  let bytes = Net.disseminate net plan in
  Alcotest.(check int) "returns zeta" (Acq_plan.Serialize.size plan) bytes;
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "mote %d has plan" i)
      true
      (Mote.plan (Net.mote net i) <> None)
  done;
  let e = Net.total_energy net in
  Alcotest.(check bool) "rx charged" true (e.En.radio_rx > 0.0);
  Net.reset_energy net;
  check_float "reset clears" 0.0 (En.total (Net.total_energy net))

(* ------------------------------------------------------------------ *)
(* Runtime *)

let runtime_fixture () =
  let rng = Rng.create 30 in
  let ds = Acq_data.Lab_gen.generate rng ~rows:4_000 in
  let history, live = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let q =
    Q.create schema
      [
        Acq_plan.Predicate.inside ~attr:Acq_data.Lab_gen.idx_light ~lo:12 ~hi:31;
        Acq_plan.Predicate.inside ~attr:Acq_data.Lab_gen.idx_temp ~lo:0 ~hi:11;
      ]
  in
  (history, live, q)

let test_runtime_end_to_end () =
  let history, live, q = runtime_fixture () in
  let r =
    RT.run ~algorithm:Acq_core.Planner.Heuristic ~history ~live q
  in
  Alcotest.(check bool) "verdicts correct" true r.RT.correct;
  Alcotest.(check int) "all epochs replayed" (DS.nrows live) r.RT.epochs;
  Alcotest.(check bool) "plan nonempty" true ((RT.plan_bytes r) > 0);
  Alcotest.(check bool) "energy positive" true (r.RT.total_energy > 0.0);
  check_float "total = acquisition + radio" r.RT.total_energy
    (r.RT.acquisition_energy +. r.RT.radio_energy)

let test_runtime_cost_matches_executor () =
  let history, live, q = runtime_fixture () in
  let r = RT.run ~algorithm:Acq_core.Planner.Corr_seq ~history ~live q in
  let costs = S.costs (Q.schema q) in
  let expected = Acq_plan.Executor.average_cost q ~costs r.RT.plan live in
  Alcotest.(check (float 1e-6)) "per-epoch acquisition = executor average"
    expected r.RT.avg_cost_per_epoch

let test_runtime_conditional_cheaper () =
  let history, live, q = runtime_fixture () in
  let naive = RT.run ~algorithm:Acq_core.Planner.Naive ~history ~live q in
  let cond =
    RT.run ~algorithm:Acq_core.Planner.Heuristic ~history ~live q
  in
  Alcotest.(check bool) "conditional saves energy" true
    (cond.RT.acquisition_energy <= naive.RT.acquisition_energy +. 1e-6)

let test_runtime_match_count () =
  let history, live, q = runtime_fixture () in
  let r = RT.run ~algorithm:Acq_core.Planner.Naive ~history ~live q in
  let truth = ref 0 in
  DS.iter_rows live (fun row ->
      if Q.eval q (DS.row live row) then incr truth);
  Alcotest.(check int) "matches equal ground truth" !truth r.RT.matches

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sensor"
    [
      ("energy", [ Alcotest.test_case "accounting" `Quick test_energy_accounting ]);
      ("radio", [ Alcotest.test_case "costs" `Quick test_radio_costs ]);
      ( "environment",
        [
          Alcotest.test_case "with nodeid" `Quick test_env_with_nodeid;
          Alcotest.test_case "without nodeid" `Quick test_env_without_nodeid;
        ] );
      ( "mote",
        [
          Alcotest.test_case "requires plan" `Quick test_mote_requires_plan;
          Alcotest.test_case "meters acquisition" `Quick
            test_mote_meters_acquisition;
          Alcotest.test_case "transmits matches" `Quick
            test_mote_transmits_matches;
        ] );
      ( "network",
        [
          Alcotest.test_case "topology" `Quick test_network_topology;
          Alcotest.test_case "dissemination" `Quick test_network_dissemination;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "end to end" `Quick test_runtime_end_to_end;
          Alcotest.test_case "cost matches executor" `Quick
            test_runtime_cost_matches_executor;
          Alcotest.test_case "conditional cheaper" `Quick
            test_runtime_conditional_cheaper;
          Alcotest.test_case "match count" `Quick test_runtime_match_count;
        ] );
    ]
