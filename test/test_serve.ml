(* The serving daemon, end to end: wire-protocol parsing and framing,
   the socket-free engine (admission, quotas, subscriptions, ticks),
   and the real select-loop server co-driven in-process with the load
   generator over a Unix socket — including the thousand-session scale
   scenario, RUN byte-identity against the one-shot path, slow-consumer
   shedding, malformed-client resilience, and graceful drain. *)

module Serve = Acq_serve
module Protocol = Serve.Protocol
module Engine = Serve.Engine
module Server = Serve.Server
module Loadgen = Serve.Loadgen
module Limits = Serve.Limits
module Source = Serve.Source
module P = Acq_core.Planner

let small_spec = { Source.kind = Source.Lab; rows = 400; seed = 7 }
let chatty = Source.chatty_sql Source.Lab

(* ------------------------------------------------------------------ *)
(* Protocol: request parsing *)

let check_parse line expected =
  match (Protocol.parse_request line, expected) with
  | Ok got, Ok want ->
      if got <> want then Alcotest.failf "parse %S: wrong request" line
  | Error (code, _), Error want_code ->
      Alcotest.(check int) (Printf.sprintf "parse %S code" line) want_code code
  | Ok _, Error code ->
      Alcotest.failf "parse %S: expected ERR %d, got a request" line code
  | Error (code, msg), Ok _ ->
      Alcotest.failf "parse %S: unexpected ERR %d %s" line code msg

let test_parse_basics () =
  check_parse "PING" (Ok Protocol.Ping);
  check_parse "QUIT" (Ok Protocol.Quit);
  check_parse "STATS" (Ok Protocol.Stats);
  check_parse "METRICS" (Ok Protocol.Metrics);
  check_parse "HELLO acme" (Ok (Protocol.Hello "acme"));
  check_parse "UNSUBSCRIBE 3" (Ok (Protocol.Unsubscribe 3))

let test_parse_opts_and_sql () =
  let sql = "SELECT * WHERE light >= 100" in
  check_parse ("RUN algo=naive exec=tree " ^ sql)
    (Ok
       (Protocol.Run
          ( {
              Protocol.planner = Some (Protocol.Fixed P.Naive);
              model = None;
              exec = Some Acq_exec.Mode.Tree;
            },
            sql )));
  (* Everything after the first (case-insensitive) SELECT is raw SQL —
     spacing and case preserved byte for byte. *)
  let weird = "select *  WHERE  humidity >= 40" in
  (match Protocol.parse_request ("SUBSCRIBE " ^ weird) with
  | Ok (Protocol.Subscribe (o, got)) ->
      Alcotest.(check string) "raw sql tail" weird got;
      Alcotest.(check bool) "no opts" true (o = Protocol.no_opts)
  | _ -> Alcotest.fail "SUBSCRIBE with raw tail did not parse");
  check_parse ("PLAN algo=portfolio " ^ sql)
    (Ok
       (Protocol.Plan
          ( { Protocol.planner = Some Protocol.Portfolio; model = None; exec = None },
            sql )))

let test_parse_errors () =
  check_parse "" (Error 400);
  check_parse "FROBNICATE the server" (Error 400);
  check_parse "\x01\x02\x03 binary junk \xff" (Error 400);
  check_parse "RUN algo=quantum SELECT * WHERE light >= 300" (Error 400);
  check_parse "RUN" (Error 422);
  check_parse "RUN algo=naive" (Error 422);
  (* "RUN SELECT" parses (the SELECT token is present); the empty
     predicate is the engine's 422, exercised in the engine tests. *)
  check_parse "UNSUBSCRIBE many" (Error 400);
  check_parse "HELLO" (Error 400)

(* ------------------------------------------------------------------ *)
(* Protocol: framing *)

let frames_equal a b =
  match (a, b) with
  | Protocol.Reply x, Protocol.Reply y -> x = y
  | Protocol.Failure (c, x), Protocol.Failure (d, y) -> c = d && x = y
  | Protocol.Event (i, x), Protocol.Event (j, y) -> i = j && x = y
  | Protocol.Overload x, Protocol.Overload y -> x = y
  | Protocol.Bye x, Protocol.Bye y -> x = y
  | _ -> false

let test_frame_roundtrip () =
  let cases =
    [
      Protocol.Reply "hello\n";
      (* payloads may contain newlines and header-looking text *)
      Protocol.Reply "OK 3\nnot a frame header\n";
      Protocol.Failure (429, "quota exhausted\n");
      Protocol.Event (17, "match cost=42.00 light=3\n");
      Protocol.Overload "2 events dropped\n";
      Protocol.Bye "closing\n";
    ]
  in
  let reader = Protocol.Reader.create () in
  (* Feed the whole stream one byte at a time: the decoder must
     resynchronize on every fragmentation boundary. *)
  let stream = String.concat "" (List.map Protocol.render cases) in
  let got = ref [] in
  String.iter
    (fun ch ->
      Protocol.Reader.feed_string reader (String.make 1 ch);
      let rec drain () =
        match Protocol.Reader.next_frame reader with
        | `Frame f ->
            got := f :: !got;
            drain ()
        | `More -> ()
        | `Bad msg -> Alcotest.failf "bad frame: %s" msg
      in
      drain ())
    stream;
  let got = List.rev !got in
  Alcotest.(check int) "frame count" (List.length cases) (List.length got);
  List.iter2
    (fun want have ->
      if not (frames_equal want have) then
        Alcotest.failf "frame mismatch: want %s" (Protocol.render want))
    cases got

let test_reader_lines () =
  let r = Protocol.Reader.create () in
  Protocol.Reader.feed_string r "PING\r\nSTATS\nHEL";
  (match Protocol.Reader.next_line r with
  | `Line l -> Alcotest.(check string) "crlf stripped" "PING" l
  | _ -> Alcotest.fail "expected first line");
  (match Protocol.Reader.next_line r with
  | `Line l -> Alcotest.(check string) "lf stripped" "STATS" l
  | _ -> Alcotest.fail "expected second line");
  (match Protocol.Reader.next_line r with
  | `More -> ()
  | _ -> Alcotest.fail "partial line must wait");
  Protocol.Reader.feed_string r "LO world\n";
  (match Protocol.Reader.next_line r with
  | `Line l -> Alcotest.(check string) "reassembled" "HELLO world" l
  | _ -> Alcotest.fail "expected reassembled line");
  (* Oversized line: flagged, then discardable once its newline shows. *)
  Protocol.Reader.feed_string r (String.make 64 'x');
  (match Protocol.Reader.next_line ~max:16 r with
  | `Too_long -> ()
  | _ -> Alcotest.fail "expected Too_long");
  Alcotest.(check bool) "no newline yet" false (Protocol.Reader.discard_line r);
  Protocol.Reader.feed_string r "tail\nPING\n";
  Alcotest.(check bool) "discards through newline" true
    (Protocol.Reader.discard_line r);
  match Protocol.Reader.next_line ~max:16 r with
  | `Line l -> Alcotest.(check string) "resynced" "PING" l
  | _ -> Alcotest.fail "expected PING after discard"

(* ------------------------------------------------------------------ *)
(* Engine *)

(* What `acqp run` prints for [sql] on [spec] with CLI defaults —
   computed independently of the engine, through the same shared
   one-shot renderer the CLI uses. *)
let expected_run_output spec sql =
  let history, live = Source.history_live spec in
  let schema = Acq_data.Dataset.schema history in
  match Acq_sql.Catalog.compile_result schema sql with
  | Error e -> Alcotest.failf "compile %S: %s" sql e
  | Ok c ->
      let text, _ =
        Serve.Oneshot.run_to_string ~algorithm:P.Heuristic ~history ~live
          c.Acq_sql.Catalog.query
      in
      text

let test_engine_run_byte_identity () =
  let engine = Engine.create small_spec in
  let sql = chatty in
  match Engine.run engine ~tenant:"t0" Protocol.no_opts sql with
  | Error (code, msg) -> Alcotest.failf "RUN failed: %d %s" code msg
  | Ok text ->
      Alcotest.(check string) "daemon RUN == one-shot CLI rendering"
        (expected_run_output small_spec sql)
        text;
      (* Deterministic across repeats (wall-clock is scrubbed). *)
      (match Engine.run engine ~tenant:"t0" Protocol.no_opts sql with
      | Ok again -> Alcotest.(check string) "repeatable" text again
      | Error (c, m) -> Alcotest.failf "second RUN failed: %d %s" c m)

let test_engine_admission () =
  (* Session cap. *)
  let limits = { Limits.default with Limits.max_sessions_per_tenant = 2 } in
  let engine = Engine.create ~limits small_spec in
  let sub owner =
    Engine.subscribe engine ~tenant:"t0" ~owner Protocol.no_opts chatty
  in
  (match sub 1 with Ok _ -> () | Error (c, m) -> Alcotest.failf "sub1: %d %s" c m);
  (match sub 1 with Ok _ -> () | Error (c, m) -> Alcotest.failf "sub2: %d %s" c m);
  (match sub 1 with
  | Error (429, _) -> ()
  | Ok _ -> Alcotest.fail "third subscription must hit the session cap"
  | Error (c, m) -> Alcotest.failf "expected 429, got %d %s" c m);
  (* Planning quota. First measure what one RUN costs in search nodes,
     then pin the quota so exactly one fits: the first request lands,
     the depleted remainder caps the second run's search budget below
     what it needs, and it is refused. *)
  let engine = Engine.create small_spec in
  (match Engine.run engine ~tenant:"t0" Protocol.no_opts chatty with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "measuring run: %d %s" c m);
  let cost =
    Limits.default.Limits.plan_quota_per_tenant
    - Engine.tenant_quota_left (Engine.tenant engine "t0")
  in
  Alcotest.(check bool) "planning work was charged" true (cost > 0);
  let limits =
    { Limits.default with Limits.plan_quota_per_tenant = cost + (cost / 2) }
  in
  let engine = Engine.create ~limits small_spec in
  (match Engine.run engine ~tenant:"t0" Protocol.no_opts chatty with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "first run under pinned quota: %d %s" c m);
  (match Engine.run engine ~tenant:"t0" Protocol.no_opts chatty with
  | Error (429, _) -> ()
  | Ok _ -> Alcotest.fail "exhausted quota must 429"
  | Error (c, m) -> Alcotest.failf "expected 429, got %d %s" c m);
  (* Other tenants keep their own quota. *)
  (match Engine.run engine ~tenant:"t1" Protocol.no_opts chatty with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "tenant isolation: %d %s" c m);
  (* Drain refuses new work with 503. *)
  let engine = Engine.create small_spec in
  Engine.drain engine;
  (match Engine.run engine ~tenant:"t0" Protocol.no_opts chatty with
  | Error (503, _) -> ()
  | Ok _ -> Alcotest.fail "draining engine must 503"
  | Error (c, m) -> Alcotest.failf "expected 503, got %d %s" c m);
  match Engine.subscribe engine ~tenant:"t0" ~owner:1 Protocol.no_opts chatty with
  | Error (503, _) -> ()
  | Ok _ -> Alcotest.fail "draining engine must refuse SUBSCRIBE"
  | Error (c, m) -> Alcotest.failf "expected 503, got %d %s" c m

let test_engine_subscribe_tick () =
  let engine = Engine.create small_spec in
  let sub_id =
    match Engine.subscribe engine ~tenant:"t0" ~owner:7 Protocol.no_opts chatty with
    | Ok (id, _) -> id
    | Error (c, m) -> Alcotest.failf "subscribe: %d %s" c m
  in
  Alcotest.(check int) "live" 1 (Engine.live_subscriptions engine);
  (* The chatty predicate matches every night tuple, so the very first
     ticks must produce events routed to the owning connection. *)
  let events = ref 0 in
  for _ = 1 to 10 do
    List.iter
      (fun (owner, id, payload) ->
        incr events;
        Alcotest.(check int) "event owner" 7 owner;
        Alcotest.(check int) "event sub id" sub_id id;
        Alcotest.(check bool) "payload nonempty" true (String.length payload > 0))
      (Engine.tick engine)
  done;
  Alcotest.(check bool) "events flowed" true (!events > 0);
  (* Only the owning connection may unsubscribe. *)
  (match Engine.unsubscribe engine ~tenant:"t0" ~owner:99 sub_id with
  | Error (404, _) -> ()
  | Ok _ -> Alcotest.fail "foreign owner must not unsubscribe"
  | Error (c, m) -> Alcotest.failf "expected 404, got %d %s" c m);
  (match Engine.unsubscribe engine ~tenant:"t0" ~owner:7 sub_id with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "unsubscribe: %d %s" c m);
  Alcotest.(check int) "released" 0 (Engine.live_subscriptions engine);
  Alcotest.(check (list (triple int int string))) "no subs, no events" []
    (Engine.tick engine);
  (* drop_owner releases everything a disconnecting connection held. *)
  ignore (Engine.subscribe engine ~tenant:"t0" ~owner:3 Protocol.no_opts chatty);
  ignore (Engine.subscribe engine ~tenant:"t0" ~owner:3 Protocol.no_opts chatty);
  Alcotest.(check int) "dropped" 2 (Engine.drop_owner engine 3);
  Alcotest.(check int) "all released" 0 (Engine.live_subscriptions engine)

(* ------------------------------------------------------------------ *)
(* Server + Loadgen, in-process over a real Unix socket *)

let temp_socket_path name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let with_server ?(limits = Limits.default) ?spec name f =
  let spec = match spec with Some s -> s | None -> small_spec in
  let path = temp_socket_path name in
  let engine = Engine.create ~limits spec in
  let listener = Server.listen_unix path in
  let server = Server.create ~unix_path:path ~listeners:[ listener ] engine limits in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path engine server)

let connect_unix path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

(* A hand-driven client for the tests that need finer control than the
   load generator gives (reading specific frames, going silent). *)
type cli = {
  cfd : Unix.file_descr;
  crd : Protocol.Reader.t;
  mutable cframes : Protocol.frame list;  (** newest first *)
}

let cli_connect path =
  let fd = connect_unix path () in
  Unix.set_nonblock fd;
  { cfd = fd; crd = Protocol.Reader.create (); cframes = [] }

let cli_send c line =
  let data = line ^ "\n" in
  let off = ref 0 in
  while !off < String.length data do
    match
      Unix.single_write_substring c.cfd data !off (String.length data - !off)
    with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ c.cfd ] [] 0.05)
  done

let cli_pump c =
  let buf = Bytes.create 8192 in
  let continue = ref true in
  while !continue do
    match Unix.read c.cfd buf 0 (Bytes.length buf) with
    | 0 -> continue := false
    | n ->
        Protocol.Reader.feed c.crd buf 0 n;
        if n < Bytes.length buf then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
  done;
  let drain = ref true in
  while !drain do
    match Protocol.Reader.next_frame c.crd with
    | `Frame f -> c.cframes <- f :: c.cframes
    | `More -> drain := false
    | `Bad msg -> Alcotest.failf "client got bad frame: %s" msg
  done

let cli_close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()

(* Poll the server until the client has accumulated [n] frames. *)
let pump_until server c ~frames:n =
  let steps = ref 0 in
  while List.length c.cframes < n && !steps < 5_000 do
    Server.poll ~timeout_ms:0 server;
    cli_pump c;
    incr steps
  done;
  if List.length c.cframes < n then
    Alcotest.failf "expected %d frames, got %d after %d polls" n
      (List.length c.cframes) !steps

let test_server_run_identity_over_socket () =
  with_server "acqpd_test_identity.sock" @@ fun path engine server ->
  ignore engine;
  let c = cli_connect path in
  Fun.protect ~finally:(fun () -> cli_close c) @@ fun () ->
  cli_send c "HELLO t0";
  cli_send c ("RUN " ^ chatty);
  pump_until server c ~frames:2;
  match List.rev c.cframes with
  | [ Protocol.Reply _hello; Protocol.Reply run ] ->
      Alcotest.(check string) "socket RUN == one-shot CLI rendering"
        (expected_run_output small_spec chatty)
        run
  | frames ->
      Alcotest.failf "unexpected frames: %s"
        (String.concat " | " (List.map Protocol.frame_kind frames))

let test_server_malformed_never_disconnects () =
  with_server "acqpd_test_malformed.sock" @@ fun path _engine server ->
  let c = cli_connect path in
  Fun.protect ~finally:(fun () -> cli_close c) @@ fun () ->
  cli_send c "HELLO t0";
  cli_send c "FROBNICATE the server";
  cli_send c "RUN SELECT * WHERE";
  cli_send c "\x01\x02\x03 binary junk \xff";
  cli_send c "PING";
  pump_until server c ~frames:5;
  match List.rev c.cframes with
  | [ Protocol.Reply _; Protocol.Failure _; Protocol.Failure _;
      Protocol.Failure _; Protocol.Reply _ ] ->
      ()
  | frames ->
      Alcotest.failf
        "want OK ERR ERR ERR OK (connection alive throughout), got: %s"
        (String.concat " | " (List.map Protocol.frame_kind frames))

let test_server_slow_consumer_sheds () =
  (* Tiny write limits so a consumer that stops reading crosses the
     soft cap within a few ticks of chatty-subscription traffic. *)
  let limits =
    {
      Limits.default with
      Limits.write_soft_limit = 2_048;
      write_hard_limit = 64 * 1024;
    }
  in
  with_server ~limits "acqpd_test_slow.sock" @@ fun path engine server ->
  let c = cli_connect path in
  Fun.protect ~finally:(fun () -> cli_close c) @@ fun () ->
  cli_send c "HELLO t0";
  (* Many subscriptions on one connection multiply per-tick event
     volume, overwhelming both the kernel socket buffer and the
     server-side queue without needing thousands of ticks. *)
  let subs = 50 in
  for _ = 1 to subs do
    cli_send c ("SUBSCRIBE algo=heuristic " ^ chatty)
  done;
  pump_until server c ~frames:(1 + subs);
  (* Go silent: stop reading while the server keeps ticking. *)
  for _ = 1 to 400 do
    Server.poll ~timeout_ms:0 server
  done;
  let prom = Engine.prometheus engine in
  let shed_nonzero =
    String.split_on_char '\n' prom
    |> List.exists (fun l ->
           String.length l > 0
           && String.starts_with ~prefix:"acqpd_shed_events_total" l
           && not (String.ends_with ~suffix:" 0" l))
  in
  Alcotest.(check bool) "server shed events for the slow consumer" true
    shed_nonzero;
  (* The connection survived shedding (drop-with-notice, not a drop of
     the client): a PING still round-trips, and the backlog we finally
     read contains at least one OVERLOAD notice. *)
  cli_send c "PING";
  let saw_overload () =
    List.exists (function Protocol.Overload _ -> true | _ -> false) c.cframes
  in
  let steps = ref 0 in
  while (not (saw_overload ())) && !steps < 5_000 do
    Server.poll ~timeout_ms:0 server;
    cli_pump c;
    incr steps
  done;
  Alcotest.(check bool) "OVERLOAD notice delivered in-stream" true
    (saw_overload ());
  Alcotest.(check int) "connection still open" 1 (Server.connections server)

(* The headline scenario: >= 1000 concurrent continuous sessions from
   one load generator, malformed clients sprinkled in, then a graceful
   drain that BYEs everyone. *)
let test_server_thousand_sessions_and_drain () =
  let limits =
    { Limits.default with Limits.max_sessions_per_tenant = 1_100 }
  in
  with_server ~limits "acqpd_test_scale.sock" @@ fun path engine server ->
  let config =
    {
      Loadgen.connections = 50;
      subscriptions_per_conn = 21;
      pings_per_conn = 2;
      runs_per_conn = 0;
      tenants = 5;
      malformed = 3;
      slow = 0;
      (* Park every client in its event-soak phase so all 1050
         sessions are provably concurrent; the drain releases them. *)
      events_target = max_int;
      sql = "algo=heuristic " ^ chatty;
    }
  in
  let gen = Loadgen.create ~config (connect_unix path) in
  Fun.protect ~finally:(fun () -> Loadgen.close_all gen) @@ fun () ->
  let max_live = ref 0 in
  let steps = ref 0 in
  let target = config.Loadgen.connections * config.Loadgen.subscriptions_per_conn in
  while !max_live < target && !steps < 20_000 do
    Server.poll ~timeout_ms:0 server;
    ignore (Loadgen.step ~timeout_ms:1 gen : bool);
    max_live := max !max_live (Engine.live_subscriptions engine);
    incr steps
  done;
  Alcotest.(check bool)
    (Printf.sprintf "concurrent sessions (saw %d)" !max_live)
    true
    (!max_live >= 1_000);
  (* Let event traffic flow to the parked clients before draining. *)
  let report = Loadgen.report gen in
  Alcotest.(check bool) "events delivered" true (report.Loadgen.events > 0);
  (* Graceful drain: every client gets a BYE and finishes cleanly. *)
  Server.request_shutdown server;
  let steps = ref 0 in
  while
    (not (Server.finished server && Loadgen.finished gen)) && !steps < 20_000
  do
    Server.poll ~timeout_ms:0 server;
    Server.drain_step ~grace_s:2.0 server;
    ignore (Loadgen.step ~timeout_ms:1 gen : bool);
    incr steps
  done;
  Alcotest.(check bool) "server drained" true (Server.finished server);
  Alcotest.(check bool) "all clients done" true (Loadgen.finished gen);
  let report = Loadgen.report gen in
  (* 3 malformed clients x 4 garbage lines, each a structured ERR —
     and nothing else fails. *)
  Alcotest.(check int) "structured errors from garbage" 12
    report.Loadgen.errors;
  Alcotest.(check int) "no client dropped mid-script" 0
    report.Loadgen.disconnects;
  let expected_ok =
    (* hello + subscribe acks + pings per connection *)
    config.Loadgen.connections
    * (1 + config.Loadgen.subscriptions_per_conn + config.Loadgen.pings_per_conn)
  in
  Alcotest.(check int) "every request answered OK" expected_ok
    report.Loadgen.ok

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basics;
          Alcotest.test_case "parse opts and raw sql" `Quick
            test_parse_opts_and_sql;
          Alcotest.test_case "parse errors are structured" `Quick
            test_parse_errors;
          Alcotest.test_case "frame roundtrip, byte-at-a-time" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "reader lines" `Quick test_reader_lines;
        ] );
      ( "engine",
        [
          Alcotest.test_case "RUN byte-identity with one-shot CLI" `Quick
            test_engine_run_byte_identity;
          Alcotest.test_case "admission: caps, quotas, drain" `Quick
            test_engine_admission;
          Alcotest.test_case "subscribe, tick, unsubscribe" `Quick
            test_engine_subscribe_tick;
        ] );
      ( "server",
        [
          Alcotest.test_case "RUN byte-identity over the socket" `Quick
            test_server_run_identity_over_socket;
          Alcotest.test_case "malformed input never disconnects" `Quick
            test_server_malformed_never_disconnects;
          Alcotest.test_case "slow consumer sheds with OVERLOAD" `Quick
            test_server_slow_consumer_sheds;
          Alcotest.test_case "1000+ sessions, then graceful drain" `Slow
            test_server_thousand_sessions_and_drain;
        ] );
    ]
