(* Tests for the pluggable probability backends (Acq_prob.Backend):
   cross-backend agreement on exhaustively enumerable domains, the
   memo combinator's cache semantics and telemetry, the seed-closure
   vs packed-backend planning differential, the Chow-Liu incremental
   pattern inference, capability routing in the sequential planner,
   and the --model spec syntax. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module R = Acq_plan.Range
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Ser = Acq_plan.Serialize
module B = Acq_prob.Backend
module E = Acq_prob.Estimator
module CL = Acq_prob.Chow_liu
module Metrics = Acq_obs.Metrics
module Tel = Acq_obs.Telemetry
module P = Acq_core.Planner

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let named_schema domains =
  S.create
    (List.init (Array.length domains) (fun k ->
         A.discrete
           ~name:(Printf.sprintf "a%d" k)
           ~cost:(float_of_int (k + 1))
           ~domain:domains.(k)))

(* One row per point of the product domain: the uniform full-factorial
   dataset. Attributes are exactly independent and every marginal is
   exactly uniform, so all four backends — including Chow-Liu, whose
   Laplace smoothing preserves uniformity — represent the distribution
   without error and must agree to machine precision. *)
let factorial_dataset domains =
  let n = Array.length domains in
  let total = Array.fold_left ( * ) 1 domains in
  let rows =
    Array.init total (fun idx ->
        let r = Array.make n 0 in
        let rem = ref idx in
        for k = n - 1 downto 0 do
          r.(k) <- !rem mod domains.(k);
          rem := !rem / domains.(k)
        done;
        r)
  in
  DS.create (named_schema domains) rows

let contenders ds =
  let base =
    [
      ("empirical", B.empirical ds);
      ("independence", B.independence ds);
      ( "chow-liu",
        B.chow_liu (CL.learn ds) ~weight:(float_of_int (DS.nrows ds)) );
      ("dense", B.dense ds);
      (* Budget >= window: the sample is the window itself, so the
         sampling backend must agree with empirical to the bit. *)
      ("sampled", B.sampled ~n:(DS.nrows ds) ~delta:0.05 ds);
    ]
  in
  base @ List.map (fun (name, b) -> (name ^ ",memo", B.memo b)) base

(* Correlated dataset for the differential and Chow-Liu tests. *)
let correlated_dataset seed domains rows =
  let n = Array.length domains in
  let rng = Rng.create seed in
  let data =
    Array.init rows (fun _ ->
        let regime = Rng.float rng 1.0 in
        Array.init n (fun k ->
            if Rng.bernoulli rng 0.75 then
              min
                (domains.(k) - 1)
                (int_of_float (regime *. float_of_int domains.(k)))
            else Rng.int rng domains.(k)))
  in
  DS.create (named_schema domains) data

(* ------------------------------------------------------------------ *)
(* Agreement property: every backend (and its memo wrapper) matches
   Dense on range_prob / value_probs / pred_prob / pattern_probs, to
   1e-9, before and after an arbitrary restriction chain. *)

type agree_instance = {
  domains : int array;
  raw_ops : (int * int * int) array;  (** one optional op per attribute *)
}

let agree_gen =
  QCheck2.Gen.(
    let* n = int_range 2 3 in
    let* domains = array_repeat n (int_range 2 4) in
    let* n_ops = int_range 0 n in
    let* raw_ops =
      array_repeat n_ops
        (triple (int_range 0 1000) (int_range 0 1000) (int_range 0 2))
    in
    return { domains; raw_ops })

let agree_print i =
  Printf.sprintf "{domains=[%s]; ops=[%s]}"
    (String.concat ";" (Array.to_list (Array.map string_of_int i.domains)))
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun (a, b, m) -> Printf.sprintf "(%d,%d,%d)" a b m)
             i.raw_ops)))

(* Op [i] restricts attribute [i] (distinct attributes keep every
   per-attribute allowed set non-empty). Mode 0 = observe a range,
   1 = condition on a predicate holding, 2 = on it failing — the
   latter clamped so the complement value set is never empty. *)
let normalize_ops domains raw_ops =
  Array.mapi
    (fun i (a, b, m) ->
      let d = domains.(i) in
      let lo = a mod d in
      let hi = lo + (b mod (d - lo)) in
      let mode = m mod 3 in
      let hi = if mode = 2 && lo = 0 && hi = d - 1 then d - 2 else hi in
      (i, lo, hi, mode))
    raw_ops

let apply_ops b ops =
  Array.fold_left
    (fun b (attr, lo, hi, mode) ->
      match mode with
      | 0 -> B.restrict_range b attr (R.make lo hi)
      | 1 -> B.restrict_pred b (Pred.inside ~attr ~lo ~hi) true
      | _ -> B.restrict_pred b (Pred.inside ~attr ~lo ~hi) false)
    b ops

let agree what expect got =
  if Float.abs (expect -. got) > 1e-9 then
    QCheck2.Test.fail_reportf "%s: dense=%.12g got=%.12g" what expect got

let prop_backends_agree =
  QCheck2.Test.make ~count:60 ~print:agree_print
    ~name:"all backends agree with dense on factorial domains"
    agree_gen
    (fun inst ->
      let domains = inst.domains in
      let n = Array.length domains in
      let ds = factorial_dataset domains in
      let ops = normalize_ops domains inst.raw_ops in
      let reference = apply_ops (B.dense ds) ops in
      let preds =
        Array.init (min n 3) (fun k ->
            Pred.inside ~attr:k ~lo:0 ~hi:(domains.(k) / 2))
      in
      List.iter
        (fun (name, b0) ->
          let b = apply_ops b0 ops in
          for attr = 0 to n - 1 do
            let d = domains.(attr) in
            for lo = 0 to d - 1 do
              for hi = lo to d - 1 do
                agree
                  (Printf.sprintf "%s range_prob a%d [%d,%d]" name attr lo hi)
                  (B.range_prob reference attr (R.make lo hi))
                  (B.range_prob b attr (R.make lo hi));
                agree
                  (Printf.sprintf "%s pred_prob a%d [%d,%d]" name attr lo hi)
                  (B.pred_prob reference (Pred.inside ~attr ~lo ~hi))
                  (B.pred_prob b (Pred.inside ~attr ~lo ~hi))
              done
            done;
            let vr = B.value_probs reference attr in
            let vb = B.value_probs b attr in
            Array.iteri
              (fun v x ->
                agree
                  (Printf.sprintf "%s value_probs a%d v%d" name attr v)
                  x vb.(v))
              vr
          done;
          let pr = B.pattern_probs reference preds in
          let pb = B.pattern_probs b preds in
          Array.iteri
            (fun mask x ->
              agree (Printf.sprintf "%s pattern %d" name mask) x pb.(mask))
            pr)
        (contenders ds);
      true)

(* ------------------------------------------------------------------ *)
(* Memo combinator *)

let test_memo_counters () =
  let ds = factorial_dataset [| 3; 3 |] in
  let b, h = B.memo_with_handle (B.empirical ds) in
  let p = Pred.inside ~attr:0 ~lo:1 ~hi:2 in
  let first = B.pred_prob b p in
  let s1 = B.handle_stats h in
  Alcotest.(check int) "first query misses" 1 s1.B.misses;
  Alcotest.(check int) "no hits yet" 0 s1.B.hits;
  Alcotest.(check int) "one entry" 1 s1.B.entries;
  let again = B.pred_prob b p in
  let s2 = B.handle_stats h in
  Alcotest.(check int) "repeat hits" 1 s2.B.hits;
  Alcotest.(check int) "no new miss" 1 s2.B.misses;
  check_float "cached value identical" first again;
  (* A different query is a fresh entry, not a hit. *)
  ignore (B.value_probs b 1);
  let s3 = B.handle_stats h in
  Alcotest.(check int) "distinct query misses" 2 s3.B.misses;
  Alcotest.(check int) "entries grow" 2 s3.B.entries

let test_memo_restriction_scopes () =
  let ds = factorial_dataset [| 4; 4 |] in
  let b, h = B.memo_with_handle (B.dense ds) in
  let p = Pred.inside ~attr:1 ~lo:0 ~hi:1 in
  ignore (B.pred_prob b p);
  let b' = B.restrict_range b 0 (R.make 0 1) in
  ignore (B.pred_prob b' p);
  let s = B.handle_stats h in
  (* The restriction itself is one miss, and the same query under the
     new conditioning is another: distinct scope, no false hit. *)
  Alcotest.(check int) "no hits across scopes" 0 s.B.hits;
  Alcotest.(check int) "root query + restriction + scoped query" 3 s.B.misses;
  ignore (B.pred_prob b' p);
  Alcotest.(check int) "hit within the restricted scope" 1
    (B.handle_stats h).B.hits;
  (* Repeating the restriction is itself answered from cache. *)
  let b'' = B.restrict_range b 0 (R.make 0 1) in
  Alcotest.(check int) "restriction cached" 2 (B.handle_stats h).B.hits;
  (* ... and the re-fetched scope shares the first one's entries. *)
  ignore (B.pred_prob b'' p);
  Alcotest.(check int) "scope entries shared" 3 (B.handle_stats h).B.hits

let test_memo_order_independent_scopes () =
  (* Mask-based conditioning signatures are canonical: the same value
     sets reached in a different restriction order share cache
     entries. *)
  let ds = factorial_dataset [| 4; 4 |] in
  let b, h = B.memo_with_handle (B.dense ds) in
  let r0 = R.make 0 1 and r1 = R.make 1 3 in
  let ab = B.restrict_range (B.restrict_range b 0 r0) 1 r1 in
  ignore (B.value_probs ab 0);
  let misses_before = (B.handle_stats h).B.misses in
  let ba = B.restrict_range (B.restrict_range b 1 r1) 0 r0 in
  ignore (B.value_probs ba 0);
  let s = B.handle_stats h in
  Alcotest.(check int) "reordered chain adds only its own restrictions"
    (misses_before + 2) s.B.misses;
  Alcotest.(check int) "query under reordered conditioning hits" 1 s.B.hits

let test_memo_telemetry () =
  let reg = Metrics.create () in
  let tel = Tel.create ~metrics:reg () in
  let ds = factorial_dataset [| 3; 2 |] in
  let b, h = B.memo_with_handle ~telemetry:tel (B.empirical ds) in
  let p = Pred.inside ~attr:0 ~lo:0 ~hi:1 in
  ignore (B.pred_prob b p);
  ignore (B.pred_prob b p);
  ignore (B.value_probs b 1);
  let s = B.handle_stats h in
  let sum prefix =
    List.fold_left
      (fun acc (k, v) ->
        if
          String.length k >= String.length prefix
          && String.sub k 0 (String.length prefix) = prefix
        then acc +. v
        else acc)
      0.0 (Metrics.snapshot reg)
  in
  check_float "hit counter mirrors handle" (float_of_int s.B.hits)
    (sum "acqp_prob_memo_hits_total");
  check_float "miss counter mirrors handle" (float_of_int s.B.misses)
    (sum "acqp_prob_memo_misses_total");
  Alcotest.(check int) "one hit" 1 s.B.hits;
  Alcotest.(check int) "two misses" 2 s.B.misses

(* ------------------------------------------------------------------ *)
(* Differential: the seed closure path and the packed backend path
   must produce byte-identical plans, identical Eq. (3) costs, and
   identical zeta(P), with and without memoization, for every planner
   across 50 random instances. *)

let diff_options =
  { P.default_options with P.split_points_per_attr = 2 }

let build_diff_instance seed =
  let rng = Rng.create seed in
  let n = 3 in
  let domains = Array.init n (fun _ -> 2 + Rng.int rng 3) in
  let ds = correlated_dataset (seed + 7) domains 240 in
  let schema = DS.schema ds in
  let n_preds = 1 + Rng.int rng 2 in
  let attrs = Rng.sample_without_replacement rng n_preds n in
  let preds =
    Array.to_list
      (Array.map
         (fun attr ->
           let d = domains.(attr) in
           let lo = Rng.int rng d in
           let hi = lo + Rng.int rng (d - lo) in
           Pred.inside ~attr ~lo ~hi)
         attrs)
  in
  (ds, Q.create schema preds)

let test_differential () =
  let algs = [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ] in
  for seed = 0 to 49 do
    let ds, q = build_diff_instance (1000 + seed) in
    let costs = S.costs (DS.schema ds) in
    List.iter
      (fun alg ->
        let ctx =
          Printf.sprintf "seed %d %s" seed (P.algorithm_name alg)
        in
        let r_seed =
          P.plan_with_estimator ~options:diff_options alg q ~costs
            (E.empirical ds)
        in
        let r_back =
          P.plan_with_backend ~options:diff_options alg q ~costs
            (B.empirical ds)
        in
        let r_memo =
          P.plan_with_backend ~options:diff_options alg q ~costs
            (B.memo (B.empirical ds))
        in
        let enc = Ser.encode r_seed.P.plan in
        Alcotest.(check bool)
          (ctx ^ ": backend plan byte-identical")
          true
          (Bytes.equal enc (Ser.encode r_back.P.plan));
        Alcotest.(check bool)
          (ctx ^ ": memoized plan byte-identical")
          true
          (Bytes.equal enc (Ser.encode r_memo.P.plan));
        Alcotest.(check bool)
          (ctx ^ ": est_cost identical")
          true
          (Float.equal r_seed.P.est_cost r_back.P.est_cost
          && Float.equal r_seed.P.est_cost r_memo.P.est_cost);
        Alcotest.(check int)
          (ctx ^ ": zeta identical")
          r_seed.P.stats.Acq_core.Search.plan_size
          r_back.P.stats.Acq_core.Search.plan_size;
        Alcotest.(check int)
          (ctx ^ ": zeta identical under memo")
          r_seed.P.stats.Acq_core.Search.plan_size
          r_memo.P.stats.Acq_core.Search.plan_size)
      algs
  done

(* ------------------------------------------------------------------ *)
(* Chow-Liu: the Gray-code incremental pattern_probs must equal the
   direct per-pattern inference, unconditioned and under evidence. *)

let test_chow_liu_incremental () =
  let ds = correlated_dataset 31 [| 3; 4; 2; 3 |] 800 in
  let m = CL.learn ds in
  let preds =
    [|
      Pred.inside ~attr:0 ~lo:1 ~hi:2;
      Pred.inside ~attr:1 ~lo:0 ~hi:1;
      Pred.inside ~attr:2 ~lo:1 ~hi:1;
      Pred.inside ~attr:3 ~lo:0 ~hi:0;
    |]
  in
  let check_against given label got =
    Array.iteri
      (fun mask got_p ->
        let ev = ref given in
        Array.iteri
          (fun j p -> ev := CL.and_pred m !ev p (mask land (1 lsl j) <> 0))
          preds;
        check_float
          (Printf.sprintf "%s pattern %d" label mask)
          (CL.cond_prob m ~given !ev)
          got_p)
      got
  in
  let b = B.chow_liu m ~weight:(float_of_int (DS.nrows ds)) in
  check_against (CL.no_evidence m) "root" (B.pattern_probs b preds);
  (* Same check in a conditioned scope: restrict the backend and build
     the matching evidence for the reference. *)
  let r = R.make 0 1 in
  let given = CL.and_range m (CL.no_evidence m) 1 r in
  check_against given "restricted" (B.pattern_probs (B.restrict_range b 1 r) preds)

(* ------------------------------------------------------------------ *)
(* Capability routing: a 13-predicate query exceeds Chow-Liu's
   pattern width (12), so the sequential planner must fall back to
   GreedySeq instead of raising — even when optseq_threshold alone
   would have chosen OptSeq. *)

let test_capability_routing () =
  let n = 13 in
  let domains = Array.make n 2 in
  let schema = named_schema domains in
  let rng = Rng.create 99 in
  let rows =
    Array.init 400 (fun _ -> Array.init n (fun _ -> Rng.int rng 2))
  in
  let ds = DS.create schema rows in
  let q =
    Q.create schema (List.init n (fun k -> Pred.inside ~attr:k ~lo:1 ~hi:1))
  in
  let b = B.chow_liu (CL.learn ds) ~weight:(float_of_int (DS.nrows ds)) in
  Alcotest.(check (option int))
    "chow-liu advertises its pattern bound" (Some 12) (B.max_pattern_preds b);
  Alcotest.(check (option int))
    "empirical is unbounded" None (B.max_pattern_preds (B.empirical ds));
  let options = { P.default_options with P.optseq_threshold = 20 } in
  let r = P.plan_with_backend ~options P.Corr_seq q ~costs:(S.costs schema) b in
  Alcotest.(check bool) "plans without raising" true (r.P.est_cost >= 0.0);
  (* The unbounded empirical backend under the same options does go
     through OptSeq; both paths must still cost out finitely. *)
  let r' =
    P.plan_with_backend ~options P.Corr_seq q ~costs:(S.costs schema)
      (B.empirical ds)
  in
  Alcotest.(check bool) "optseq path also plans" true (r'.P.est_cost >= 0.0)

(* ------------------------------------------------------------------ *)
(* Selection syntax and guards *)

(* Property: printing any well-formed spec and parsing it back yields
   the same spec — including sampled(n,delta), whose delta must
   round-trip exactly through the shortest-faithful float printer. *)
let spec_gen =
  QCheck2.Gen.(
    let* kind =
      oneof
        [
          oneofl [ B.Empirical; B.Dense; B.Chow_liu; B.Independence ];
          (let* n = int_range 1 100_000 in
           let* delta = float_range 1e-9 0.999 in
           return (B.Sampled { n; delta }));
        ]
    in
    let* memoize = bool in
    return { B.kind; memoize })

let spec_print sp = Printf.sprintf "%S" (B.spec_to_string sp)

let prop_spec_round_trip =
  QCheck2.Test.make ~count:200 ~print:spec_print
    ~name:"spec_to_string / spec_of_string round-trip" spec_gen (fun sp ->
      match B.spec_of_string (B.spec_to_string sp) with
      | Ok sp' ->
          if sp' <> sp then
            QCheck2.Test.fail_reportf "parsed %S as %S"
              (B.spec_to_string sp) (B.spec_to_string sp');
          true
      | Error e ->
          QCheck2.Test.fail_reportf "rejected own rendering %S: %s"
            (B.spec_to_string sp)
            (B.spec_error_to_string e))

let test_spec_errors () =
  List.iter
    (fun input ->
      match B.spec_of_string input with
      | Ok sp ->
          Alcotest.failf "accepted %S as %s" input (B.spec_to_string sp)
      | Error e ->
          (* Structured errors carry the offending input verbatim and a
             human reason; the rendering embeds both. *)
          Alcotest.(check string)
            (Printf.sprintf "error echoes input %S" input)
            input e.B.input;
          Alcotest.(check bool)
            (Printf.sprintf "reason non-empty for %S" input)
            true
            (String.length e.B.reason > 0);
          let rendered = B.spec_error_to_string e in
          Alcotest.(check bool)
            (Printf.sprintf "rendering mentions reason for %S" input)
            true
            (String.length rendered >= String.length e.B.reason))
    [
      "";
      "bogus";
      "dense,turbo";
      "sampled(";
      "sampled()";
      "sampled(10)";
      "sampled(0,0.5)";
      "sampled(-3,0.5)";
      "sampled(10,0)";
      "sampled(10,1.0)";
      "sampled(10,1.5)";
      "sampled(10,nope)";
      "sampled(10,0.5,extra)";
      "sampled(10,0.5)x";
    ]

let test_spec_parsing () =
  let ok s =
    match B.spec_of_string s with
    | Ok sp -> sp
    | Error e -> Alcotest.failf "%s rejected: %s" s (B.spec_error_to_string e)
  in
  List.iter
    (fun s ->
      Alcotest.(check string) ("round-trip " ^ s) s (B.spec_to_string (ok s)))
    [
      "empirical";
      "dense";
      "chow-liu";
      "independence";
      "empirical,memo";
      "dense,memo";
      "chow-liu,memo";
      "independence,memo";
      "sampled(4,0.1)";
      "sampled(4,0.1),memo";
      "sampled(256,0.05)";
    ];
  Alcotest.(check bool) "memo flag parsed" true (ok "dense,memo").B.memoize;
  Alcotest.(check bool) "kind parsed" true ((ok "dense,memo").B.kind = B.Dense);
  Alcotest.(check string) "default spec is the seed behavior" "empirical"
    (B.spec_to_string B.default_spec);
  Alcotest.(check bool) "bare sampled takes the defaults" true
    ((ok "sampled").B.kind
    = B.Sampled { n = B.default_sample_size; delta = B.default_sample_delta });
  Alcotest.(check bool) "sampled args parsed" true
    ((ok "sampled(4,0.1)").B.kind = B.Sampled { n = 4; delta = 0.1 });
  (match B.spec_of_string "bogus" with
  | Ok _ -> Alcotest.fail "accepted bogus model"
  | Error _ -> ());
  match B.spec_of_string "dense,turbo" with
  | Ok _ -> Alcotest.fail "accepted bogus suffix"
  | Error _ -> ()

let test_dense_capacity_guard () =
  (* 64^4 joint cells exceed the 2^22 cap. *)
  let schema = named_schema (Array.make 4 64) in
  let ds = DS.create schema [| [| 0; 1; 2; 3 |] |] in
  Alcotest.check_raises "guarded"
    (Invalid_argument "Backend.dense: joint table too large") (fun () ->
      ignore (B.dense ds))

let test_of_dataset_spec () =
  let ds = factorial_dataset [| 3; 3 |] in
  List.iter
    (fun (s, expected_name) ->
      let spec =
        match B.spec_of_string s with
        | Ok sp -> sp
        | Error e -> Alcotest.fail (B.spec_error_to_string e)
      in
      Alcotest.(check string)
        (s ^ " builds the right backend")
        expected_name
        (B.name (B.of_dataset ~spec ds)))
    [
      ("empirical", "empirical");
      ("dense", "dense");
      ("chow-liu", "chow-liu");
      ("independence", "independence");
      ("sampled(8,0.2)", "sampled");
      ("empirical,memo", "memo");
      ("dense,memo", "memo");
      ("sampled(8,0.2),memo", "memo");
    ]

let () =
  Alcotest.run "backend"
    [
      ( "agreement",
        [ QCheck_alcotest.to_alcotest prop_backends_agree ] );
      ( "memo",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_memo_counters;
          Alcotest.test_case "restriction scopes" `Quick
            test_memo_restriction_scopes;
          Alcotest.test_case "order-independent scopes" `Quick
            test_memo_order_independent_scopes;
          Alcotest.test_case "telemetry counters" `Quick test_memo_telemetry;
        ] );
      ( "differential",
        [
          Alcotest.test_case "closure vs backend vs memo, 50 seeds" `Quick
            test_differential;
        ] );
      ( "chow-liu",
        [
          Alcotest.test_case "incremental pattern_probs" `Quick
            test_chow_liu_incremental;
        ] );
      ( "routing",
        [ Alcotest.test_case "capability fallback" `Quick test_capability_routing ] );
      ( "selection",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          QCheck_alcotest.to_alcotest prop_spec_round_trip;
          Alcotest.test_case "spec structured errors" `Quick test_spec_errors;
          Alcotest.test_case "dense capacity guard" `Quick
            test_dense_capacity_guard;
          Alcotest.test_case "of_dataset honors spec" `Quick test_of_dataset_spec;
        ] );
    ]
