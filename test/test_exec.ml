(* Compiled-executor tests: the flat automaton (Acq_exec.Compile) and
   the batch interpreter (Acq_exec.Batch) must be byte-identical to
   the tree executor — same verdicts, same Float-equal costs, same
   acquisition order, same Eq.-4 averages, same telemetry counters —
   on every planner's output, under uniform and board cost models.
   Plus: wire-format round trips, Dataset.columns snapshot semantics
   (including after Sliding rotation), zero-allocation sweeps, and the
   exec-mode plumbing through Runner, Runtime, Experiment, and the
   adaptive Session. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module Ex = Acq_plan.Executor
module P = Acq_core.Planner
module Mode = Acq_exec.Mode
module Compile = Acq_exec.Compile
module Batch = Acq_exec.Batch
module Runner = Acq_exec.Runner
module M = Acq_obs.Metrics
module T = Acq_obs.Telemetry

(* ------------------------------------------------------------------ *)
(* Random planning instances — same shape as test_props: correlated
   columns under a latent regime, mixed costs, random conjunctive
   query. *)

type instance = {
  seed : int;
  n_attrs : int;
  domains : int array;
  costs : float array;
  n_preds : int;
}

let instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n_attrs = int_range 3 5 in
    let* domains = array_repeat n_attrs (int_range 2 6) in
    let* costs = array_repeat n_attrs (oneofl [ 1.0; 5.0; 20.0; 100.0 ]) in
    let* n_preds = int_range 1 (min 3 n_attrs) in
    return { seed; n_attrs; domains; costs; n_preds })

let instance_print i =
  Printf.sprintf "{seed=%d; domains=[%s]; costs=[%s]; preds=%d}" i.seed
    (String.concat ";" (Array.to_list (Array.map string_of_int i.domains)))
    (String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%g") i.costs)))
    i.n_preds

let build_instance i =
  let schema =
    S.create
      (List.init i.n_attrs (fun k ->
           A.discrete
             ~name:(Printf.sprintf "a%d" k)
             ~cost:i.costs.(k) ~domain:i.domains.(k)))
  in
  let rng = Rng.create i.seed in
  let rows =
    Array.init 400 (fun _ ->
        let regime = Rng.float rng 1.0 in
        Array.init i.n_attrs (fun k ->
            if Rng.bernoulli rng 0.75 then
              min (i.domains.(k) - 1)
                (int_of_float (regime *. float_of_int i.domains.(k)))
            else Rng.int rng i.domains.(k)))
  in
  let ds = DS.create schema rows in
  let attrs = Rng.sample_without_replacement rng i.n_preds i.n_attrs in
  let preds =
    Array.to_list
      (Array.map
         (fun attr ->
           let k = i.domains.(attr) in
           let lo = Rng.int rng k in
           let hi = lo + Rng.int rng (k - lo) in
           if Rng.bernoulli rng 0.25 && not (lo = 0 && hi = k - 1) then
             Pred.outside ~attr ~lo ~hi
           else Pred.inside ~attr ~lo ~hi)
         attrs)
  in
  (ds, Q.create schema preds)

let options = { P.default_options with split_points_per_attr = 3 }
let planners = [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ]

let board_instance_gen =
  QCheck2.Gen.(
    let* i = instance_gen in
    let* n_boards = int_range 1 3 in
    let* board = array_repeat i.n_attrs (int_range 0 (n_boards - 1)) in
    let* wakeup = array_repeat n_boards (oneofl [ 0.0; 10.0; 50.0; 90.0 ]) in
    let* read = array_repeat i.n_attrs (oneofl [ 1.0; 5.0; 20.0 ]) in
    return (i, board, wakeup, read))

let outcome_equal (a : Ex.outcome) (b : Ex.outcome) =
  a.Ex.verdict = b.Ex.verdict
  && Float.equal a.Ex.cost b.Ex.cost
  && a.Ex.acquired = b.Ex.acquired

(* Tree and compiled agree on every tuple (verdict, cost, acquisition
   order) and on the Eq.-4 sweep average — exactly, not within
   epsilon. *)
let differential ?model ds q =
  let costs = S.costs (DS.schema ds) in
  let opts =
    match model with
    | None -> options
    | Some _ -> { options with cost_model = model }
  in
  List.for_all
    (fun algo ->
      let plan = (P.plan ~options:opts algo q ~train:ds).P.plan in
      let b = Batch.create ?model ~costs (Compile.compile q plan) in
      let rows_ok = ref true in
      for r = 0 to DS.nrows ds - 1 do
        let row = DS.row ds r in
        if
          not
            (outcome_equal
               (Ex.run_tuple ?model q ~costs plan row)
               (Batch.run_tuple b row))
        then rows_ok := false
      done;
      !rows_ok
      && Float.equal
           (Ex.average_cost ?model q ~costs plan ds)
           (Batch.average_cost b ds))
    planners

let prop_compiled_equals_tree =
  QCheck2.Test.make ~count:50
    ~name:"compiled = tree (verdict, cost, order, Eq.4) on every planner"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      differential ds q)

let prop_compiled_equals_tree_boards =
  QCheck2.Test.make ~count:50
    ~name:"compiled = tree under random board models"
    ~print:(fun (i, _, _, _) -> instance_print i)
    board_instance_gen
    (fun (i, board, wakeup, read) ->
      let ds, q = build_instance i in
      differential ~model:(Acq_plan.Cost_model.boards ~board ~wakeup ~read) ds q)

(* Brute-force oracle: the compiled verdict is the WHERE clause,
   checked against direct predicate evaluation on the full tuple. *)
let prop_compiled_oracle =
  QCheck2.Test.make ~count:50
    ~name:"compiled verdicts match brute-force predicate evaluation"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      List.for_all
        (fun algo ->
          let plan = (P.plan ~options algo q ~train:ds).P.plan in
          let b = Batch.create ~costs (Compile.compile q plan) in
          let ok = ref true in
          for r = 0 to DS.nrows ds - 1 do
            let row = DS.row ds r in
            if (Batch.run_tuple b row).Ex.verdict <> Q.eval q row then
              ok := false
          done;
          !ok)
        planners)

(* ------------------------------------------------------------------ *)
(* Wire format *)

let prop_wire_roundtrip =
  QCheck2.Test.make ~count:60 ~name:"Compile.of_string (to_string a) = a"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      List.for_all
        (fun algo ->
          let plan = (P.plan ~options algo q ~train:ds).P.plan in
          let a = Compile.compile q plan in
          let s = Compile.to_string a in
          String.length s = Compile.size a
          && Compile.equal (Compile.of_string s) a)
        planners)

let test_wire_rejects_garbage () =
  let ds, q =
    build_instance
      { seed = 42; n_attrs = 3; domains = [| 2; 3; 4 |];
        costs = [| 1.0; 5.0; 20.0 |]; n_preds = 2 }
  in
  let plan = (P.plan ~options P.Heuristic q ~train:ds).P.plan in
  let s = Compile.to_string (Compile.compile q plan) in
  let rejects bytes =
    match Compile.of_string bytes with
    | exception Failure _ -> true
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad magic" true
    (rejects ("XXX" ^ String.sub s 3 (String.length s - 3)));
  Alcotest.(check bool) "truncated" true
    (rejects (String.sub s 0 (String.length s - 1)));
  Alcotest.(check bool) "trailing bytes" true (rejects (s ^ "\000"));
  Alcotest.(check bool) "empty" true (rejects "")

(* Constant plans compile to entry = accept/reject with no nodes, and
   still round-trip. *)
let test_wire_constant_plans () =
  let schema = S.create [ A.discrete ~name:"x" ~cost:1.0 ~domain:2 ] in
  let q = Q.create schema [ Pred.inside ~attr:0 ~lo:0 ~hi:0 ] in
  List.iter
    (fun (v, target) ->
      let a = Compile.compile q (Plan.const v) in
      Alcotest.(check int) "no nodes" 0 (Compile.n_nodes a);
      Alcotest.(check int) "entry" target (Compile.entry a);
      Alcotest.(check bool) "round trips" true
        (Compile.equal (Compile.of_string (Compile.to_string a)) a))
    [ (true, Compile.accept); (false, Compile.reject) ]

(* ------------------------------------------------------------------ *)
(* Dataset.columns *)

let test_columns_matches_rows () =
  let ds, _ =
    build_instance
      { seed = 7; n_attrs = 4; domains = [| 3; 2; 5; 4 |];
        costs = [| 1.0; 5.0; 20.0; 100.0 |]; n_preds = 2 }
  in
  let cols = DS.columns ds in
  Alcotest.(check int) "arity" (S.arity (DS.schema ds)) (Array.length cols);
  Array.iter
    (fun col -> Alcotest.(check int) "column length" (DS.nrows ds)
        (Array.length col))
    cols;
  for r = 0 to DS.nrows ds - 1 do
    let row = DS.row ds r in
    Array.iteri
      (fun c col ->
        if col.(r) <> row.(c) then
          Alcotest.failf "cols.(%d).(%d) = %d but row has %d" c r col.(r)
            row.(c))
      cols
  done

let test_columns_after_sliding_rotation () =
  let module Sl = Acq_prob.Sliding in
  let schema =
    S.create
      [ A.discrete ~name:"x" ~cost:1.0 ~domain:7;
        A.discrete ~name:"y" ~cost:2.0 ~domain:5 ]
  in
  let w = Sl.create schema ~capacity:16 in
  let row i = [| i mod 7; i mod 5 |] in
  (* Overfill so both rotating cell buffers have been in play. *)
  for i = 0 to 40 do
    Sl.push w (row i)
  done;
  let ds = Sl.to_dataset w in
  let cols = DS.columns ds in
  (* Window holds rows 25..40; columns must read them in order. *)
  for r = 0 to 15 do
    let expect = row (25 + r) in
    Alcotest.(check int) "x cell" expect.(0) cols.(0).(r);
    Alcotest.(check int) "y cell" expect.(1) cols.(1).(r)
  done;
  (* The snapshot is a copy: pushing more tuples (rotating the buffer
     the dataset aliases) must not reach into the transpose we took. *)
  for i = 41 to 80 do
    Sl.push w (row i)
  done;
  for r = 0 to 15 do
    let expect = row (25 + r) in
    Alcotest.(check int) "x cell stable" expect.(0) cols.(0).(r);
    Alcotest.(check int) "y cell stable" expect.(1) cols.(1).(r)
  done

(* ------------------------------------------------------------------ *)
(* Allocation discipline *)

let test_sweep_zero_alloc () =
  (* The batched hot loop must not allocate per tuple: once the batch
     state and the columnar snapshot are in hand, a full sweep costs a
     handful of words (the sweep closure and instrument lookup), not
     O(rows). 400 rows of boxed outcomes would be tens of KiB. *)
  let ds, q =
    build_instance
      { seed = 11; n_attrs = 4; domains = [| 4; 3; 5; 2 |];
        costs = [| 1.0; 5.0; 20.0; 100.0 |]; n_preds = 3 }
  in
  let costs = S.costs (DS.schema ds) in
  let plan = (P.plan ~options P.Heuristic q ~train:ds).P.plan in
  let b = Batch.create ~costs (Compile.compile q plan) in
  let cols = DS.columns ds in
  let nrows = DS.nrows ds in
  let sink = ref 0.0 in
  for _ = 1 to 3 do
    sink := !sink +. Batch.sweep_columns b cols ~nrows
  done;
  let cycles = 40 in
  let before = Gc.allocated_bytes () in
  for _ = 1 to cycles do
    sink := !sink +. Batch.sweep_columns b cols ~nrows
  done;
  let per_cycle = (Gc.allocated_bytes () -. before) /. float_of_int cycles in
  Alcotest.(check bool)
    (Printf.sprintf "sweep allocates O(1) (%.0f bytes/cycle)" per_cycle)
    true
    (per_cycle < 8_192.0);
  ignore !sink

(* ------------------------------------------------------------------ *)
(* Mode / Runner plumbing *)

let test_mode_strings () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.to_string m) with
      | Ok m' -> Alcotest.(check bool) "round trips" true (m = m')
      | Error e -> Alcotest.fail e)
    Mode.all;
  (match Mode.of_string "quantum" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted junk mode");
  Alcotest.(check bool) "default is tree" true (Mode.default = Mode.Tree)

let test_runner_modes_agree () =
  let ds, q =
    build_instance
      { seed = 23; n_attrs = 4; domains = [| 3; 4; 2; 5 |];
        costs = [| 5.0; 1.0; 100.0; 20.0 |]; n_preds = 3 }
  in
  let costs = S.costs (DS.schema ds) in
  let plan = (P.plan ~options P.Heuristic q ~train:ds).P.plan in
  let prepared m = Runner.prepare ~mode:m q ~costs plan in
  let pt = prepared Mode.Tree and pc = prepared Mode.Compiled in
  for r = 0 to DS.nrows ds - 1 do
    let row = DS.row ds r in
    if not (outcome_equal (Runner.run_tuple pt row) (Runner.run_tuple pc row))
    then Alcotest.failf "modes disagree on row %d" r
  done;
  Alcotest.(check bool) "Eq.4 identical" true
    (Float.equal
       (Runner.average_cost_prepared pt ds)
       (Runner.average_cost_prepared pc ds))

(* Both execution paths record the very same telemetry totals:
   per-attribute acquisition counters, tuple/match counters, and the
   traversal-depth histogram (compiled batches the updates; the sums
   must not change). *)
let test_instrumentation_parity () =
  let ds, q =
    build_instance
      { seed = 31; n_attrs = 4; domains = [| 4; 2; 3; 5 |];
        costs = [| 1.0; 100.0; 5.0; 20.0 |]; n_preds = 3 }
  in
  let costs = S.costs (DS.schema ds) in
  let plan = (P.plan ~options P.Heuristic q ~train:ds).P.plan in
  let sweep mode =
    let m = M.create () in
    let obs = T.create ~metrics:m () in
    ignore (Runner.average_cost ~obs ~mode q ~costs plan ds : float);
    List.filter
      (fun (k, _) -> String.length k >= 4 && String.sub k 0 4 = "acqp")
      (M.snapshot m)
  in
  let tree = sweep Mode.Tree and compiled = sweep Mode.Compiled in
  Alcotest.(check bool) "counters recorded" true (tree <> []);
  Alcotest.(check (list (pair string (float 0.0)))) "identical series" tree
    compiled

(* ------------------------------------------------------------------ *)
(* Exec mode through the stack *)

let test_runtime_exec_parity () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 77) ~rows:1_200 in
  let history, live = DS.split_by_time ds ~train_fraction:0.5 in
  let q = Acq_workload.Query_gen.lab_query (Rng.create 7) ~train:history in
  let run exec =
    Acq_sensor.Runtime.run ~exec ~algorithm:P.Heuristic ~history ~live q
  in
  let rt = run Mode.Tree and rc = run Mode.Compiled in
  let module Rt = Acq_sensor.Runtime in
  Alcotest.(check bool) "compiled verdicts correct" true rc.Rt.correct;
  Alcotest.(check int) "matches" rt.Rt.matches rc.Rt.matches;
  Alcotest.(check bool) "avg cost identical" true
    (Float.equal rt.Rt.avg_cost_per_epoch rc.Rt.avg_cost_per_epoch);
  Alcotest.(check bool) "total energy identical" true
    (Float.equal rt.Rt.total_energy rc.Rt.total_energy)

let test_experiment_exec_parity () =
  let ds, q =
    build_instance
      { seed = 51; n_attrs = 4; domains = [| 3; 3; 4; 2 |];
        costs = [| 20.0; 1.0; 5.0; 100.0 |]; n_preds = 2 }
  in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let specs =
    [
      { Acq_workload.Experiment.name = "heuristic";
        build = (fun q -> P.plan ~options P.Heuristic q ~train) };
      { Acq_workload.Experiment.name = "naive";
        build = (fun q -> P.plan ~options P.Naive q ~train) };
    ]
  in
  let run exec_mode =
    Acq_workload.Experiment.run ~exec_mode ~specs ~queries:[ q ] ~train ~test
      ()
  in
  let costs_of r =
    List.concat_map
      (fun qr ->
        Array.to_list qr.Acq_workload.Experiment.test_costs
        @ Array.to_list qr.Acq_workload.Experiment.train_costs)
      r
  in
  let t = run Mode.Tree and c = run Mode.Compiled in
  Alcotest.(check bool) "measured costs identical" true
    (List.for_all2 Float.equal (costs_of t) (costs_of c));
  Alcotest.(check bool) "compiled run consistent" true
    (List.for_all (fun qr -> qr.Acq_workload.Experiment.consistent) c)

(* Adaptive session under Compiled: the prepared automaton tracks the
   installed plan across a drift-triggered switch, and execute serves
   the same outcomes the tree would. *)
let test_session_compiled_recompiles_on_switch () =
  let module Sess = Acq_adapt.Session in
  let module Pol = Acq_adapt.Policy in
  let schema =
    S.create
      [ A.discrete ~name:"x1" ~cost:10.0 ~domain:4;
        A.discrete ~name:"x2" ~cost:10.0 ~domain:4 ]
  in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:0 ~hi:1; Pred.inside ~attr:1 ~lo:0 ~hi:1 ]
  in
  (* Phase A: x1 selective; phase B: x2 selective — drift forces a
     different sequential order. *)
  let phase_a_row i = [| 2 + (i mod 2); i mod 2 |] in
  let phase_b_row i = [| i mod 2; 2 + (i mod 2) |] in
  let history = DS.create schema (Array.init 200 phase_a_row) in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let s =
    Sess.create ~exec_mode:Mode.Compiled ~algorithm:P.Corr_seq ~policy
      ~window:40 ~history q
  in
  Alcotest.(check bool) "session mode" true
    (Sess.exec_mode s = Mode.Compiled);
  let check_execute_matches_tree i =
    let row = phase_b_row i in
    let costs = S.costs schema in
    let compiled = Sess.execute s ~lookup:(fun a -> row.(a)) in
    let tree = Ex.run_tuple q ~costs (Sess.plan s) row in
    Alcotest.(check bool) "execute = tree executor" true
      (outcome_equal compiled tree)
  in
  check_execute_matches_tree 0;
  let initial_plan = Sess.plan s in
  Alcotest.(check bool) "prepared tracks initial plan" true
    (Plan.equal (Runner.plan (Sess.prepared s)) initial_plan);
  let switched = ref false in
  for i = 0 to 99 do
    if Sess.step s ~cost:120.0 (phase_b_row i) <> None then switched := true
  done;
  Alcotest.(check bool) "a switch happened" true !switched;
  Alcotest.(check bool) "plan actually changed" false
    (Plan.equal (Sess.plan s) initial_plan);
  Alcotest.(check bool) "prepared recompiled to new plan" true
    (Plan.equal (Runner.plan (Sess.prepared s)) (Sess.plan s));
  Alcotest.(check bool) "prepared stays compiled" true
    (Runner.mode (Sess.prepared s) = Mode.Compiled);
  check_execute_matches_tree 1

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [
      ( "differential",
        [
          q prop_compiled_equals_tree;
          q prop_compiled_equals_tree_boards;
          q prop_compiled_oracle;
        ] );
      ( "wire format",
        [
          q prop_wire_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "constant plans" `Quick test_wire_constant_plans;
        ] );
      ( "columns",
        [
          Alcotest.test_case "matches rows" `Quick test_columns_matches_rows;
          Alcotest.test_case "after sliding rotation" `Quick
            test_columns_after_sliding_rotation;
        ] );
      ( "batch",
        [ Alcotest.test_case "zero per-tuple alloc" `Quick test_sweep_zero_alloc ]
      );
      ( "plumbing",
        [
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
          Alcotest.test_case "runner modes agree" `Quick test_runner_modes_agree;
          Alcotest.test_case "instrumentation parity" `Quick
            test_instrumentation_parity;
          Alcotest.test_case "runtime parity" `Quick test_runtime_exec_parity;
          Alcotest.test_case "experiment parity" `Quick
            test_experiment_exec_parity;
          Alcotest.test_case "session recompiles on switch" `Quick
            test_session_compiled_recompiles_on_switch;
        ] );
    ]
