(* Differential suite for Acq_prob.Sharded: the domain-sharded window
   must be observationally identical to the unsharded Sliding window —
   same retained rows in the same oldest-first order, same marginals,
   same backends, same drift scores — across shard counts 1/2/4, under
   rotation, and whether the shard-local phases run sequentially or
   fanned across a real domain pool. Two independent pool runs must
   also agree with each other (determinism, not just seq ≡ par).

   Worker count for the pool tests comes from ACQP_TEST_DOMAINS
   (default 4); CI runs the suite under both 1 and 4. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Sl = Acq_prob.Sliding
module Sh = Acq_prob.Sharded
module B = Acq_prob.Backend
module R = Acq_plan.Range
module Pred = Acq_plan.Predicate
module Dp = Acq_par.Domain_pool

let test_domains () =
  match Sys.getenv_opt "ACQP_TEST_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* Random window instances: correlated columns (a latent regime drives
   every attribute), a capacity divisible by every tested shard count,
   and a row count that exercises fill, exactly-full, and rotation. *)

type instance = {
  seed : int;
  domains : int array;
  capacity : int;  (** multiple of 4 *)
  rows : int;
}

let instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n_attrs = int_range 2 4 in
    let* domains = array_repeat n_attrs (int_range 2 5) in
    let* cap4 = int_range 1 16 in
    let* rows = int_range 0 (12 * cap4) in
    return { seed; domains; capacity = 4 * cap4; rows })

let instance_print i =
  Printf.sprintf "{seed=%d; domains=[%s]; capacity=%d; rows=%d}" i.seed
    (String.concat ";" (Array.to_list (Array.map string_of_int i.domains)))
    i.capacity i.rows

let build i =
  let schema =
    S.create
      (Array.to_list
         (Array.mapi
            (fun k d ->
              A.discrete
                ~name:(Printf.sprintf "x%d" k)
                ~cost:(float_of_int (1 + k))
                ~domain:d)
            i.domains))
  in
  let rng = Rng.create i.seed in
  let rows =
    Array.init i.rows (fun _ ->
        let regime = Rng.int rng 2 in
        Array.map
          (fun d ->
            if regime = 0 then Rng.int rng d
            else if Rng.int rng 4 = 0 then Rng.int rng d
            else d - 1)
          i.domains)
  in
  (schema, rows)

let ds_rows ds =
  List.init (DS.nrows ds) (fun r -> Array.to_list (DS.row ds r))

let shard_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* QCheck differentials, sequential fanout *)

let prop_merge_equals_unsharded =
  QCheck2.Test.make ~count:120 ~print:instance_print
    ~name:"sharded merge = unsharded window (rows, marginals, histograms)"
    instance_gen
    (fun i ->
      let schema, rows = build i in
      let sl = Sl.create schema ~capacity:i.capacity in
      Array.iter (Sl.push sl) rows;
      List.for_all
        (fun k ->
          let sh = Sh.create schema ~capacity:i.capacity ~shards:k in
          Sh.ingest sh rows;
          Sh.size sh = Sl.size sl
          && Sh.marginals sh = Sl.marginals sl
          && List.for_all
               (fun a -> Sh.histogram sh a = Sl.histogram sl a)
               (List.init (Array.length i.domains) Fun.id)
          && (Sl.size sl = 0
             || ds_rows (Sh.to_dataset sh) = ds_rows (Sl.to_dataset sl)))
        shard_counts)

let prop_ingest_equals_push =
  QCheck2.Test.make ~count:80 ~print:instance_print
    ~name:"batch ingest = one-by-one push" instance_gen (fun i ->
      let schema, rows = build i in
      List.for_all
        (fun k ->
          let a = Sh.create schema ~capacity:i.capacity ~shards:k in
          let b = Sh.create schema ~capacity:i.capacity ~shards:k in
          Sh.ingest a rows;
          Array.iter (Sh.push b) rows;
          Sh.size a = Sh.size b
          && Sh.marginals a = Sh.marginals b
          && (Sh.size a = 0
             || ds_rows (Sh.to_dataset a) = ds_rows (Sh.to_dataset b)))
        shard_counts)

(* Backends built over the sharded window agree with the unsharded
   window's to 1e-9 on every unconditioned value probability and on a
   conditioned one (restrict on the first attribute's top value). The
   dense spec exercises the per-shard partial-table merge; empirical
   the fanned row merge; independence the merged-marginal product. *)
let backend_specs = [ "empirical"; "dense"; "independence" ]

let probe schema est =
  let domains = S.domains schema in
  let probs = ref [] in
  Array.iteri
    (fun a d ->
      for v = 0 to d - 1 do
        probs := B.range_prob est a (R.make v v) :: !probs
      done)
    domains;
  let d0 = domains.(0) in
  let cond =
    B.restrict_pred est (Pred.inside ~attr:0 ~lo:(d0 - 1) ~hi:(d0 - 1)) true
  in
  Array.iteri
    (fun a _ -> if a > 0 then probs := B.range_prob cond a (R.make 0 0) :: !probs)
    domains;
  List.rev !probs

let close xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-9) xs ys

let prop_backend_equals_unsharded =
  QCheck2.Test.make ~count:60 ~print:instance_print
    ~name:"sharded backend = unsharded backend (1e-9, all specs)"
    instance_gen
    (fun i ->
      let schema, rows = build i in
      if Array.length rows = 0 then true
      else begin
        let sl = Sl.create schema ~capacity:i.capacity in
        Array.iter (Sl.push sl) rows;
        List.for_all
          (fun spec_s ->
            let spec =
              match B.spec_of_string spec_s with
              | Ok sp -> sp
              | Error e -> Alcotest.fail (B.spec_error_to_string e)
            in
            let reference = probe schema (Sl.backend ~spec sl) in
            List.for_all
              (fun k ->
                let sh = Sh.create schema ~capacity:i.capacity ~shards:k in
                Sh.ingest sh rows;
                close reference (probe schema (Sh.backend ~spec sh)))
              shard_counts)
          backend_specs
      end)

let prop_drift_equals_unsharded =
  QCheck2.Test.make ~count:60 ~print:instance_print
    ~name:"sharded drift = unsharded drift" instance_gen (fun i ->
      let schema, rows = build i in
      if Array.length rows = 0 then true
      else begin
        let reference = DS.create schema rows in
        let sl = Sl.create schema ~capacity:i.capacity in
        Array.iter (Sl.push sl) rows;
        let expect = Sl.drift sl ~reference in
        List.for_all
          (fun k ->
            let sh = Sh.create schema ~capacity:i.capacity ~shards:k in
            Sh.ingest sh rows;
            Float.abs (Sh.drift sh ~reference -. expect) <= 1e-9)
          shard_counts
      end)

(* ------------------------------------------------------------------ *)
(* Pool-backed fanout: parallel ingest/merge/build are identical to
   sequential, and two independent pool runs are identical to each
   other. *)

let fixed_instance =
  { seed = 4242; domains = [| 4; 3; 2; 5 |]; capacity = 48; rows = 131 }

let artifacts ?fanout schema rows =
  let sh =
    Sh.create schema ~capacity:fixed_instance.capacity
      ~shards:(max 2 (min 4 (test_domains ())))
  in
  (match fanout with
  | Some f -> Sh.ingest ~fanout:f sh rows
  | None -> Sh.ingest sh rows);
  let dense =
    match B.spec_of_string "dense" with
    | Ok sp -> sp
    | Error _ -> assert false
  in
  ( Sh.marginals sh,
    ds_rows (Sh.to_dataset ?fanout sh),
    probe schema (Sh.backend ~spec:dense ?fanout sh) )

let test_pool_fanout_identical () =
  let schema, rows = build fixed_instance in
  let seq = artifacts schema rows in
  let run () =
    Dp.with_pool ~domains:(test_domains ()) (fun pool ->
        artifacts ~fanout:(Dp.fanout pool) schema rows)
  in
  let par = run () in
  let par' = run () in
  Alcotest.(check bool) "pool run = sequential" true (seq = par);
  Alcotest.(check bool) "two pool runs agree" true (par = par')

let test_ingest_atomicity () =
  let schema, rows = build fixed_instance in
  let sh = Sh.create schema ~capacity:48 ~shards:4 in
  Sh.ingest sh rows;
  let before = (Sh.size sh, Sh.marginals sh) in
  let bad = Array.copy rows in
  bad.(Array.length bad / 2) <- [| 99; 0; 0; 0 |];
  (try
     Sh.ingest sh bad;
     Alcotest.fail "expected domain failure"
   with Invalid_argument _ -> ());
  Alcotest.(check bool)
    "failed batch left the window untouched" true
    (before = (Sh.size sh, Sh.marginals sh))

let test_create_validation () =
  let schema, _ = build fixed_instance in
  List.iter
    (fun (cap, k) ->
      try
        ignore (Sh.create schema ~capacity:cap ~shards:k : Sh.t);
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())
    [ (0, 1); (8, 0); (10, 4) ]

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [
      ( "differentials",
        List.map to_alcotest
          [
            prop_merge_equals_unsharded;
            prop_ingest_equals_push;
            prop_backend_equals_unsharded;
            prop_drift_equals_unsharded;
          ] );
      ( "pool",
        [
          Alcotest.test_case "fanned ingest/merge/build deterministic" `Quick
            test_pool_fanout_identical;
        ] );
      ( "edges",
        [
          Alcotest.test_case "batch ingest is atomic on bad input" `Quick
            test_ingest_atomicity;
          Alcotest.test_case "create validates capacity/shards" `Quick
            test_create_validation;
        ] );
    ]
