(* Unit tests for Acq_prob: indexes, views, histograms, mutual
   information, the Chow-Liu model, and the estimator abstraction. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module R = Acq_plan.Range
module Pred = Acq_plan.Predicate
module V = Acq_prob.View
module H = Acq_prob.Histogram
module E = Acq_prob.Estimator

let check_float = Alcotest.(check (float 1e-9))
let check_floatish = Alcotest.(check (float 0.02))

let mk_schema () =
  S.create
    [
      A.discrete ~name:"a" ~cost:1.0 ~domain:4;
      A.discrete ~name:"b" ~cost:10.0 ~domain:3;
      A.discrete ~name:"c" ~cost:100.0 ~domain:2;
    ]

let mk_dataset () =
  (* 8 rows, chosen so marginals are easy to verify by hand. *)
  DS.create (mk_schema ())
    [|
      [| 0; 0; 0 |];
      [| 1; 0; 1 |];
      [| 2; 1; 0 |];
      [| 3; 1; 1 |];
      [| 0; 2; 0 |];
      [| 1; 2; 1 |];
      [| 2; 0; 0 |];
      [| 3; 1; 1 |];
    |]

(* ------------------------------------------------------------------ *)
(* Index *)

let test_index_counts () =
  let ds = mk_dataset () in
  let idx = Acq_prob.Index.build ds in
  Alcotest.(check (array int)) "rows with a=1" [| 1; 5 |]
    (Acq_prob.Index.rows_with_value idx ~attr:0 ~value:1);
  Alcotest.(check int) "count a in [1,2]" 4
    (Acq_prob.Index.count_in_range idx ~attr:0 (R.make 1 2));
  Alcotest.(check (array int)) "rows a in [1,2]" [| 1; 2; 5; 6 |]
    (Acq_prob.Index.rows_in_range idx ~attr:0 (R.make 1 2))

let test_index_matches_scan () =
  let rng = Rng.create 1 in
  let schema = mk_schema () in
  let rows =
    Array.init 500 (fun _ ->
        [| Rng.int rng 4; Rng.int rng 3; Rng.int rng 2 |])
  in
  let ds = DS.create schema rows in
  let idx = Acq_prob.Index.build ds in
  let r = R.make 1 2 in
  let scan = ref 0 in
  DS.iter_rows ds (fun row -> if R.contains r (DS.get ds row 0) then incr scan);
  Alcotest.(check int) "index count = scan count" !scan
    (Acq_prob.Index.count_in_range idx ~attr:0 r)

(* ------------------------------------------------------------------ *)
(* View *)

let test_view_full () =
  let ds = mk_dataset () in
  let v = V.of_dataset ds in
  Alcotest.(check int) "size" 8 (V.size v);
  Alcotest.(check bool) "not empty" false (V.is_empty v)

let test_view_restrict_range () =
  let ds = mk_dataset () in
  let v = V.restrict_range (V.of_dataset ds) ~attr:0 (R.make 0 1) in
  Alcotest.(check int) "4 rows with a<=1" 4 (V.size v);
  let v2 = V.restrict_range v ~attr:2 (R.make 1 1) in
  Alcotest.(check int) "then c=1" 2 (V.size v2)

let test_view_restrict_pred () =
  let ds = mk_dataset () in
  let p = Pred.inside ~attr:1 ~lo:0 ~hi:0 in
  let sat = V.restrict_pred (V.of_dataset ds) p true in
  let unsat = V.restrict_pred (V.of_dataset ds) p false in
  Alcotest.(check int) "b=0 rows" 3 (V.size sat);
  Alcotest.(check int) "complement" 5 (V.size unsat)

let test_view_histogram () =
  let ds = mk_dataset () in
  Alcotest.(check (array int)) "histogram of a" [| 2; 2; 2; 2 |]
    (V.histogram (V.of_dataset ds) ~attr:0);
  Alcotest.(check (array int)) "histogram of b" [| 3; 3; 2 |]
    (V.histogram (V.of_dataset ds) ~attr:1)

let test_view_probs () =
  let ds = mk_dataset () in
  let v = V.of_dataset ds in
  check_float "range prob" 0.5 (V.range_prob v ~attr:0 (R.make 0 1));
  check_float "pred prob" 0.5
    (V.pred_prob v (Pred.inside ~attr:2 ~lo:1 ~hi:1));
  let empty =
    V.restrict_range
      (V.restrict_range v ~attr:1 (R.make 2 2))
      ~attr:0 (R.make 2 2)
  in
  check_float "empty view prob" 0.0 (V.range_prob empty ~attr:0 (R.make 0 3))

let test_view_pattern_counts () =
  let ds = mk_dataset () in
  let v = V.of_dataset ds in
  let preds =
    [| Pred.inside ~attr:2 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:0 ~hi:1 |]
  in
  let counts = V.pattern_counts v preds in
  Alcotest.(check int) "4 patterns" 4 (Array.length counts);
  Alcotest.(check int) "total is view size" 8 (Acq_util.Array_util.sum_int counts);
  (* Pattern 3 = c=1 and b in {0,1}: rows 1,3,7. *)
  Alcotest.(check int) "pattern 11" 3 counts.(3)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_eq7 () =
  let h = H.of_counts [| 2; 3; 0; 5 |] in
  Alcotest.(check int) "total" 10 (H.total h);
  check_float "prob of 1" 0.3 (H.prob h 1);
  check_float "P(<2)" 0.5 (H.prob_below h 2);
  (* Equation (7): P(< x+1) = P(< x) + P(x). *)
  for x = 0 to 3 do
    check_float "incremental rule"
      (H.prob_below h x +. H.prob h x)
      (H.prob_below h (x + 1))
  done;
  check_float "range" 0.8 (H.prob_range h (R.make 1 3));
  Alcotest.(check int) "count range" 8 (H.count_range h (R.make 1 3))

let test_histogram_of_view () =
  let ds = mk_dataset () in
  let h = H.of_view (V.of_dataset ds) ~attr:1 in
  check_float "matches view histogram" (3.0 /. 8.0) (H.prob h 0)

let test_histogram_empty () =
  let h = H.of_counts [| 0; 0 |] in
  check_float "prob on empty" 0.0 (H.prob h 0);
  check_float "range on empty" 0.0 (H.prob_range h (R.make 0 1))

(* ------------------------------------------------------------------ *)
(* Mutual information *)

let test_mi_independent_near_zero () =
  let rng = Rng.create 2 in
  let schema =
    S.create
      [
        A.discrete ~name:"x" ~cost:1.0 ~domain:4;
        A.discrete ~name:"y" ~cost:1.0 ~domain:4;
      ]
  in
  let rows =
    Array.init 20_000 (fun _ -> [| Rng.int rng 4; Rng.int rng 4 |])
  in
  let ds = DS.create schema rows in
  Alcotest.(check bool) "MI ~ 0" true (Acq_prob.Mutual_info.mi ds 0 1 < 0.01)

let test_mi_identical_high () =
  let rng = Rng.create 3 in
  let schema =
    S.create
      [
        A.discrete ~name:"x" ~cost:1.0 ~domain:4;
        A.discrete ~name:"y" ~cost:1.0 ~domain:4;
      ]
  in
  let rows =
    Array.init 5_000 (fun _ ->
        let v = Rng.int rng 4 in
        [| v; v |])
  in
  let ds = DS.create schema rows in
  Alcotest.(check bool) "MI(X,X) near log 4" true
    (Acq_prob.Mutual_info.mi ds 0 1 > 1.2)

let test_mi_symmetry () =
  let ds = mk_dataset () in
  check_float "symmetric"
    (Acq_prob.Mutual_info.mi ds 0 1)
    (Acq_prob.Mutual_info.mi ds 1 0)

let test_mi_matrix () =
  let ds = mk_dataset () in
  let m = Acq_prob.Mutual_info.matrix ds in
  check_float "diagonal zero" 0.0 m.(1).(1);
  check_float "matrix symmetric" m.(0).(2) m.(2).(0)

(* ------------------------------------------------------------------ *)
(* Chow-Liu *)

(* Chain-structured data: x0 -> x1 -> x2, each copying its parent with
   probability 0.9. The learned tree must connect adjacent variables
   (0-1, 1-2), never the weaker 0-2 link. *)
let chain_dataset ?(rows = 20_000) () =
  let rng = Rng.create 4 in
  let schema =
    S.create
      [
        A.discrete ~name:"x0" ~cost:1.0 ~domain:2;
        A.discrete ~name:"x1" ~cost:1.0 ~domain:2;
        A.discrete ~name:"x2" ~cost:1.0 ~domain:2;
      ]
  in
  let rows =
    Array.init rows (fun _ ->
        let x0 = Rng.int rng 2 in
        let x1 = if Rng.bernoulli rng 0.9 then x0 else 1 - x0 in
        let x2 = if Rng.bernoulli rng 0.9 then x1 else 1 - x1 in
        [| x0; x1; x2 |])
  in
  DS.create schema rows

let test_chow_liu_structure () =
  let ds = chain_dataset () in
  let m = Acq_prob.Chow_liu.learn ds in
  (* Rooted at 0: expect parent(1) = 0 and parent(2) = 1. *)
  Alcotest.(check (option int)) "root has no parent" None
    (Acq_prob.Chow_liu.parent m 0);
  Alcotest.(check (option int)) "x1 -> x0" (Some 0)
    (Acq_prob.Chow_liu.parent m 1);
  Alcotest.(check (option int)) "x2 -> x1" (Some 1)
    (Acq_prob.Chow_liu.parent m 2)

let test_chow_liu_no_evidence_prob_one () =
  let ds = chain_dataset ~rows:2_000 () in
  let m = Acq_prob.Chow_liu.learn ds in
  check_float "P(no evidence) = 1" 1.0
    (Acq_prob.Chow_liu.evidence_prob m (Acq_prob.Chow_liu.no_evidence m))

let test_chow_liu_matches_empirical () =
  let ds = chain_dataset () in
  let m = Acq_prob.Chow_liu.learn ds in
  let v = V.of_dataset ds in
  (* P(x2 = 1) *)
  let e1 =
    Acq_prob.Chow_liu.and_range m (Acq_prob.Chow_liu.no_evidence m) 2 (R.make 1 1)
  in
  check_floatish "marginal x2" (V.range_prob v ~attr:2 (R.make 1 1))
    (Acq_prob.Chow_liu.evidence_prob m e1);
  (* P(x2 = 1 | x0 = 1) — a query that spans the whole chain. *)
  let given =
    Acq_prob.Chow_liu.and_range m (Acq_prob.Chow_liu.no_evidence m) 0 (R.make 1 1)
  in
  let joint = Acq_prob.Chow_liu.and_range m given 2 (R.make 1 1) in
  let emp =
    V.range_prob (V.restrict_range v ~attr:0 (R.make 1 1)) ~attr:2 (R.make 1 1)
  in
  check_floatish "P(x2|x0) via message passing" emp
    (Acq_prob.Chow_liu.cond_prob m ~given joint)

let test_chow_liu_marginal_normalized () =
  let ds = chain_dataset ~rows:5_000 () in
  let m = Acq_prob.Chow_liu.learn ds in
  let e =
    Acq_prob.Chow_liu.and_range m (Acq_prob.Chow_liu.no_evidence m) 0 (R.make 0 0)
  in
  let marg = Acq_prob.Chow_liu.marginal m e 2 in
  check_float "sums to 1" 1.0 (Acq_util.Array_util.sum_float marg)

let test_chow_liu_impossible_evidence () =
  let ds = chain_dataset ~rows:2_000 () in
  let m = Acq_prob.Chow_liu.learn ds in
  let e = Acq_prob.Chow_liu.no_evidence m in
  e.(0).(0) <- false;
  e.(0).(1) <- false;
  check_float "P(impossible) = 0" 0.0 (Acq_prob.Chow_liu.evidence_prob m e)

(* ------------------------------------------------------------------ *)
(* Joint *)

let test_joint_matches_view () =
  let rng = Rng.create 5 in
  let schema = mk_schema () in
  let ds =
    DS.create schema
      (Array.init 2_000 (fun _ ->
           [| Rng.int rng 4; Rng.int rng 3; Rng.int rng 2 |]))
  in
  let j = Acq_prob.Joint.build ds ~attrs:[ 0; 1; 2 ] in
  Alcotest.(check int) "cells" 24 (Acq_prob.Joint.cells j);
  let v = V.of_dataset ds in
  (* Any conditional the planner would ask must agree with counting. *)
  check_float "marginal range"
    (V.range_prob v ~attr:0 (R.make 1 2))
    (Acq_prob.Joint.prob j [ (0, R.make 1 2) ]);
  let v' = V.restrict_range v ~attr:1 (R.make 0 1) in
  check_float "conditional"
    (V.range_prob v' ~attr:2 (R.make 1 1))
    (Acq_prob.Joint.cond_prob j
       ~given:[ (1, R.make 0 1) ]
       [ (2, R.make 1 1) ])

let test_joint_marginalizes_uncovered_dims () =
  let ds = mk_dataset () in
  let j = Acq_prob.Joint.build ds ~attrs:[ 0; 2 ] in
  check_float "marginal of a" 0.25 (Acq_prob.Joint.prob j [ (0, R.make 1 1) ]);
  Alcotest.(check (list int)) "attrs ascending" [ 0; 2 ] (Acq_prob.Joint.attrs j);
  let m = Acq_prob.Joint.marginal j 2 in
  check_float "marginal vector sums to 1" 1.0 (Acq_util.Array_util.sum_float m)

let test_joint_intersects_duplicate_constraints () =
  let ds = mk_dataset () in
  let j = Acq_prob.Joint.build ds ~attrs:[ 0 ] in
  check_float "intersection" 0.25
    (Acq_prob.Joint.prob j [ (0, R.make 0 1); (0, R.make 1 3) ]);
  check_float "disjoint ranges" 0.0
    (Acq_prob.Joint.prob j [ (0, R.make 0 0); (0, R.make 2 3) ])

let test_joint_validation () =
  let ds = mk_dataset () in
  (try
     ignore (Acq_prob.Joint.build ds ~attrs:[]);
     Alcotest.fail "expected empty-attrs failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Acq_prob.Joint.build ds ~attrs:[ 9 ]);
     Alcotest.fail "expected out-of-schema failure"
   with Invalid_argument _ -> ());
  let j = Acq_prob.Joint.build ds ~attrs:[ 0 ] in
  (try
     ignore (Acq_prob.Joint.prob j [ (1, R.make 0 0) ]);
     Alcotest.fail "expected uncovered-attr failure"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Estimator *)

let test_estimator_empirical_basics () =
  let ds = mk_dataset () in
  let est = E.empirical ds in
  check_float "weight" 8.0 est.E.weight;
  check_float "range prob" 0.5 (est.E.range_prob 0 (R.make 0 1));
  check_float "pred prob" 0.5 (est.E.pred_prob (Pred.inside ~attr:2 ~lo:1 ~hi:1));
  let vp = est.E.value_probs 1 in
  check_float "value probs" (3.0 /. 8.0) vp.(0);
  check_float "value probs sum" 1.0 (Acq_util.Array_util.sum_float vp)

let test_estimator_restrict_chain () =
  let ds = mk_dataset () in
  let est = E.empirical ds in
  let est' = est.E.restrict_range 0 (R.make 0 1) in
  check_float "restricted weight" 4.0 est'.E.weight;
  let est'' = est'.E.restrict_pred (Pred.inside ~attr:2 ~lo:1 ~hi:1) true in
  check_float "chained weight" 2.0 est''.E.weight;
  Alcotest.(check bool) "not empty" false (E.is_empty est'');
  let empty = est''.E.restrict_range 1 (R.make 1 1) in
  Alcotest.(check bool) "b=1 never with a<=1,c=1" true (E.is_empty empty)

let test_estimator_pattern_probs_sum () =
  let ds = mk_dataset () in
  let est = E.empirical ds in
  let probs =
    est.E.pattern_probs
      [| Pred.inside ~attr:0 ~lo:0 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:2 |]
  in
  check_float "sum to 1" 1.0 (Acq_util.Array_util.sum_float probs)

let test_estimator_chow_liu_coherent () =
  let ds = chain_dataset () in
  let m = Acq_prob.Chow_liu.learn ds in
  let est = E.of_chow_liu m ~weight:1000.0 in
  let emp = E.empirical ds in
  check_floatish "marginal agreement"
    (emp.E.pred_prob (Pred.inside ~attr:1 ~lo:1 ~hi:1))
    (est.E.pred_prob (Pred.inside ~attr:1 ~lo:1 ~hi:1));
  let est' = est.E.restrict_range 0 (R.make 1 1) in
  let emp' = emp.E.restrict_range 0 (R.make 1 1) in
  check_floatish "conditional agreement"
    (emp'.E.pred_prob (Pred.inside ~attr:2 ~lo:1 ~hi:1))
    (est'.E.pred_prob (Pred.inside ~attr:2 ~lo:1 ~hi:1));
  let probs = est.E.pattern_probs [| Pred.inside ~attr:0 ~lo:1 ~hi:1;
                                     Pred.inside ~attr:2 ~lo:1 ~hi:1 |] in
  check_floatish "pattern probs sum" 1.0 (Acq_util.Array_util.sum_float probs)

(* The documented 12-predicate ceiling of the Chow-Liu estimator's
   pattern_probs: exactly 12 works (4096 inferences, a proper
   distribution), 13 raises Invalid_argument rather than silently
   enumerating 2^13 evidence combinations. *)
let test_estimator_chow_liu_pattern_limit () =
  let ds = chain_dataset () in
  let m = Acq_prob.Chow_liu.learn ds in
  let est = E.of_chow_liu m ~weight:1000.0 in
  (* Predicates may repeat attributes, so width 12 is reachable even
     on a 3-attribute schema. *)
  let preds n = Array.init n (fun j -> Pred.inside ~attr:(j mod 3) ~lo:1 ~hi:1) in
  let at_limit = est.E.pattern_probs (preds 12) in
  Alcotest.(check int) "2^12 patterns" 4096 (Array.length at_limit);
  check_floatish "boundary distribution sums to 1" 1.0
    (Acq_util.Array_util.sum_float at_limit);
  (try
     ignore (est.E.pattern_probs (preds 13));
     Alcotest.fail "expected 13-predicate rejection"
   with Invalid_argument _ -> ());
  (* The empirical estimator has no such ceiling. *)
  let emp = E.empirical ds in
  Alcotest.(check int) "empirical handles 13" 8192
    (Array.length (emp.E.pattern_probs (preds 13)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prob"
    [
      ( "index",
        [
          Alcotest.test_case "counts" `Quick test_index_counts;
          Alcotest.test_case "matches scan" `Quick test_index_matches_scan;
        ] );
      ( "view",
        [
          Alcotest.test_case "full" `Quick test_view_full;
          Alcotest.test_case "restrict range" `Quick test_view_restrict_range;
          Alcotest.test_case "restrict pred" `Quick test_view_restrict_pred;
          Alcotest.test_case "histogram" `Quick test_view_histogram;
          Alcotest.test_case "probabilities" `Quick test_view_probs;
          Alcotest.test_case "pattern counts" `Quick test_view_pattern_counts;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "equation 7" `Quick test_histogram_eq7;
          Alcotest.test_case "of view" `Quick test_histogram_of_view;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
        ] );
      ( "mutual_info",
        [
          Alcotest.test_case "independent" `Quick test_mi_independent_near_zero;
          Alcotest.test_case "identical" `Quick test_mi_identical_high;
          Alcotest.test_case "symmetry" `Quick test_mi_symmetry;
          Alcotest.test_case "matrix" `Quick test_mi_matrix;
        ] );
      ( "chow_liu",
        [
          Alcotest.test_case "structure" `Quick test_chow_liu_structure;
          Alcotest.test_case "no evidence" `Quick test_chow_liu_no_evidence_prob_one;
          Alcotest.test_case "matches empirical" `Quick
            test_chow_liu_matches_empirical;
          Alcotest.test_case "marginal normalized" `Quick
            test_chow_liu_marginal_normalized;
          Alcotest.test_case "impossible evidence" `Quick
            test_chow_liu_impossible_evidence;
        ] );
      ( "joint",
        [
          Alcotest.test_case "matches view counts" `Quick test_joint_matches_view;
          Alcotest.test_case "marginalizes" `Quick
            test_joint_marginalizes_uncovered_dims;
          Alcotest.test_case "duplicate constraints" `Quick
            test_joint_intersects_duplicate_constraints;
          Alcotest.test_case "validation" `Quick test_joint_validation;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "empirical basics" `Quick
            test_estimator_empirical_basics;
          Alcotest.test_case "restrict chain" `Quick test_estimator_restrict_chain;
          Alcotest.test_case "pattern probs sum" `Quick
            test_estimator_pattern_probs_sum;
          Alcotest.test_case "chow-liu coherent" `Quick
            test_estimator_chow_liu_coherent;
          Alcotest.test_case "chow-liu pattern limit" `Quick
            test_estimator_chow_liu_pattern_limit;
        ] );
    ]
