(* Tests for Section 7's complex acquisition costs: the sensor-board
   cost model and its integration with the executor, the analytic cost
   model, and every planner. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module Ex = Acq_plan.Executor
module CM = Acq_plan.Cost_model
module B = Acq_prob.Backend
module P = Acq_core.Planner

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

(* Schema: a0/a1 share a weather board (expensive wake-up, cheap
   reads); b sits alone on its own board; r is a free register. *)
let schema () =
  S.create
    [
      A.discrete ~name:"a0" ~cost:95.0 ~domain:2;
      A.discrete ~name:"a1" ~cost:95.0 ~domain:2;
      A.discrete ~name:"b" ~cost:100.0 ~domain:2;
      A.discrete ~name:"r" ~cost:1.0 ~domain:2;
    ]

let model () =
  CM.boards
    ~board:[| 0; 0; 1; 2 |]
    ~wakeup:[| 90.0; 50.0; 0.0 |]
    ~read:[| 5.0; 5.0; 50.0; 1.0 |]

(* ------------------------------------------------------------------ *)
(* Cost_model semantics *)

let test_uniform_atomic () =
  let m = CM.uniform [| 3.0; 7.0 |] in
  check_float "cost" 7.0 (CM.atomic m 1 ~acquired:(fun _ -> false));
  check_float "acquired free" 0.0 (CM.atomic m 1 ~acquired:(fun _ -> true));
  Alcotest.(check int) "arity" 2 (CM.n_attrs m)

let test_board_atomic () =
  let m = model () in
  let none _ = false in
  check_float "cold board" 95.0 (CM.atomic m 0 ~acquired:none);
  check_float "warm board" 5.0
    (CM.atomic m 1 ~acquired:(fun j -> j = 0));
  check_float "self acquired" 0.0 (CM.atomic m 1 ~acquired:(fun j -> j = 1));
  check_float "other board does not warm" 95.0
    (CM.atomic m 0 ~acquired:(fun j -> j = 2));
  check_float "zero-wakeup board" 1.0 (CM.atomic m 3 ~acquired:none)

let test_board_bounds () =
  let m = model () in
  Alcotest.(check (array (float 1e-9))) "worst case"
    [| 95.0; 95.0; 100.0; 1.0 |] (CM.worst_case m);
  Alcotest.(check (array (float 1e-9))) "best case"
    [| 5.0; 5.0; 50.0; 1.0 |] (CM.best_case m)

let test_board_validation () =
  (try
     ignore (CM.boards ~board:[| 0; 5 |] ~wakeup:[| 1.0 |] ~read:[| 1.0; 1.0 |]);
     Alcotest.fail "expected board-id failure"
   with Invalid_argument _ -> ());
  (try
     ignore (CM.boards ~board:[| 0 |] ~wakeup:[| -1.0 |] ~read:[| 1.0 |]);
     Alcotest.fail "expected negative-cost failure"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Executor accounting under a board model *)

let board_query () =
  Q.create (schema ())
    [
      Pred.inside ~attr:0 ~lo:1 ~hi:1;
      Pred.inside ~attr:1 ~lo:1 ~hi:1;
      Pred.inside ~attr:2 ~lo:1 ~hi:1;
    ]

let test_executor_board_accounting () =
  let q = board_query () in
  let costs = S.costs (schema ()) in
  let m = model () in
  (* Order a0, a1, b on an all-ones tuple: 95 + 5 + 100. *)
  let o =
    Ex.run_tuple ~model:m q ~costs (Plan.sequential [ 0; 1; 2 ]) [| 1; 1; 1; 1 |]
  in
  check_float "board shared" 200.0 o.Ex.cost;
  (* Order b, a0, a1: 100 + 95 + 5. *)
  let o2 =
    Ex.run_tuple ~model:m q ~costs (Plan.sequential [ 2; 0; 1 ]) [| 1; 1; 1; 1 |]
  in
  check_float "same total when all acquired" 200.0 o2.Ex.cost;
  (* Short circuit: a0 fails -> only the cold read. *)
  let o3 =
    Ex.run_tuple ~model:m q ~costs (Plan.sequential [ 0; 1; 2 ]) [| 0; 1; 1; 1 |]
  in
  check_float "cold read only" 95.0 o3.Ex.cost

let test_executor_conditioning_warms_board () =
  (* A test node on a0 powers the board; the Seq leaf's a1 read is
     then cheap. *)
  let q = board_query () in
  let costs = S.costs (schema ()) in
  let m = model () in
  let plan =
    Plan.Test
      {
        attr = 0;
        threshold = 1;
        low = Plan.const false;
        high = Plan.sequential [ 1; 2 ];
      }
  in
  let o = Ex.run_tuple ~model:m q ~costs plan [| 1; 0; 1; 1 |] in
  check_float "95 (a0 cold) + 5 (a1 warm)" 100.0 o.Ex.cost

(* ------------------------------------------------------------------ *)
(* Data + planners *)

let board_dataset ?(rows = 4_000) () =
  let rng = Rng.create 21 in
  DS.create (schema ())
    (Array.init rows (fun _ ->
         (* r predicts a0/a1 weakly; everything else fairly even. *)
         let r = Rng.int rng 2 in
         let bit p = if Rng.bernoulli rng p then 1 else 0 in
         let a0 = if r = 1 then bit 0.7 else bit 0.3 in
         let a1 = if r = 1 then bit 0.7 else bit 0.3 in
         [| a0; a1; bit 0.45; r |]))

let test_eq3_eq4_under_model () =
  let ds = board_dataset () in
  let q = board_query () in
  let costs = S.costs (DS.schema ds) in
  let m = model () in
  let est = B.empirical ds in
  List.iter
    (fun plan ->
      check_close "analytic = empirical under board model"
        (Ex.average_cost ~model:m q ~costs plan ds)
        (Acq_core.Expected_cost.of_plan ~model:m q ~costs est plan))
    [
      Plan.sequential [ 0; 1; 2 ];
      Plan.sequential [ 2; 1; 0 ];
      Plan.Test
        {
          attr = 3;
          threshold = 1;
          low = Plan.sequential [ 2; 0; 1 ];
          high = Plan.sequential [ 0; 1; 2 ];
        };
    ]

let test_optseq_exploits_board () =
  (* Board-aware OptSeq groups the two cheap-once-warm predicates;
     measured under the board model it beats the model-blind order. *)
  let ds = board_dataset () in
  let q = board_query () in
  let costs = S.costs (DS.schema ds) in
  let m = model () in
  let est = B.empirical ds in
  let aware, aware_cost = Acq_core.Optseq.order ~model:m q ~costs est in
  let blind, _ = Acq_core.Optseq.order q ~costs est in
  let measure order =
    Ex.average_cost ~model:m q ~costs (Plan.sequential order) ds
  in
  check_close "reported = measured" (measure aware) aware_cost;
  Alcotest.(check bool) "board-aware no worse than blind" true
    (measure aware <= measure blind +. 1e-6);
  (* In this construction the two a-predicates must be adjacent in the
     aware order (splitting them wastes a wake-up or a better kill). *)
  let arr = Array.of_list aware in
  let idx v =
    let r = ref (-1) in
    Array.iteri (fun i x -> if x = v then r := i) arr;
    !r
  in
  Alcotest.(check bool) "a-predicates adjacent" true
    (abs (idx 0 - idx 1) = 1)

let test_planners_consistent_under_model () =
  let ds = board_dataset () in
  let q = board_query () in
  let costs = S.costs (DS.schema ds) in
  let m = model () in
  let options =
    {
      P.default_options with
      split_points_per_attr = 1;
      cost_model = Some m;
    }
  in
  List.iter
    (fun algo ->
      let r = P.plan ~options algo q ~train:ds in
      let plan = r.P.plan in
      Alcotest.(check bool)
        (P.algorithm_name algo ^ " consistent")
        true
        (Ex.consistent q ~costs plan ds);
      check_close
        (P.algorithm_name algo ^ " cost realized under model")
        (Ex.average_cost ~model:m q ~costs plan ds)
        r.P.est_cost)
    [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ]

let test_exhaustive_dominates_under_model () =
  let ds = board_dataset () in
  let q = board_query () in
  let m = model () in
  let options =
    { P.default_options with split_points_per_attr = 1; cost_model = Some m }
  in
  let cost algo = (P.plan ~options algo q ~train:ds).P.est_cost in
  Alcotest.(check bool) "exhaustive <= heuristic" true
    (cost P.Exhaustive <= cost P.Heuristic +. 1e-6);
  Alcotest.(check bool) "heuristic <= corrseq" true
    (cost P.Heuristic <= cost P.Corr_seq +. 1e-6);
  Alcotest.(check bool) "corrseq <= naive" true
    (cost P.Corr_seq <= cost P.Naive +. 1e-6)

let test_model_awareness_pays () =
  (* Plan with and without telling the planner about boards, execute
     both under the true board model: awareness can only help. *)
  let ds = board_dataset () in
  let q = board_query () in
  let costs = S.costs (DS.schema ds) in
  let m = model () in
  let aware_opts =
    { P.default_options with split_points_per_attr = 1; cost_model = Some m }
  in
  let blind_opts = { P.default_options with split_points_per_attr = 1 } in
  let aware = (P.plan ~options:aware_opts P.Exhaustive q ~train:ds).P.plan in
  let blind = (P.plan ~options:blind_opts P.Exhaustive q ~train:ds).P.plan in
  let c_aware = Ex.average_cost ~model:m q ~costs aware ds in
  let c_blind = Ex.average_cost ~model:m q ~costs blind ds in
  Alcotest.(check bool)
    (Printf.sprintf "aware (%.1f) <= blind (%.1f)" c_aware c_blind)
    true (c_aware <= c_blind +. 1e-6)

let () =
  Alcotest.run "boards"
    [
      ( "cost_model",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_atomic;
          Alcotest.test_case "board atomic" `Quick test_board_atomic;
          Alcotest.test_case "bounds" `Quick test_board_bounds;
          Alcotest.test_case "validation" `Quick test_board_validation;
        ] );
      ( "executor",
        [
          Alcotest.test_case "board accounting" `Quick
            test_executor_board_accounting;
          Alcotest.test_case "conditioning warms board" `Quick
            test_executor_conditioning_warms_board;
        ] );
      ( "planners",
        [
          Alcotest.test_case "Eq3 = Eq4 under model" `Quick
            test_eq3_eq4_under_model;
          Alcotest.test_case "optseq exploits board" `Quick
            test_optseq_exploits_board;
          Alcotest.test_case "all consistent" `Quick
            test_planners_consistent_under_model;
          Alcotest.test_case "dominance" `Quick
            test_exhaustive_dominates_under_model;
          Alcotest.test_case "awareness pays" `Quick test_model_awareness_pays;
        ] );
    ]
