(* Unit and integration tests for Acq_adapt: plan cache, replanning
   policies, the per-query session state machine, the multi-query
   supervisor, and the end-to-end adaptive runtime on drifting and
   stationary traces. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module P = Acq_core.Planner
module C = Acq_adapt.Plan_cache
module Pol = Acq_adapt.Policy
module Sess = Acq_adapt.Session
module Sup = Acq_adapt.Supervisor

(* ------------------------------------------------------------------ *)
(* Fixture: two expensive binary attributes whose marginals swap at a
   phase change, so the optimal test order reverses — phase A wants
   [x1; x2] (x1 usually fails), phase B wants [x2; x1]. *)

let drift_schema () =
  S.create
    [
      A.discrete ~name:"x1" ~cost:100.0 ~domain:2;
      A.discrete ~name:"x2" ~cost:100.0 ~domain:2;
    ]

let phase_a_row i =
  [| (if i mod 5 = 0 then 1 else 0); (if i mod 5 = 1 then 0 else 1) |]

let phase_b_row i =
  [| (if i mod 5 = 1 then 0 else 1); (if i mod 5 = 0 then 1 else 0) |]

let phase_a_ds rows = DS.create (drift_schema ()) (Array.init rows phase_a_row)

let drift_query schema =
  Q.create schema
    [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]

let fixture () =
  let schema = drift_schema () in
  (schema, drift_query schema, phase_a_ds 200)

(* Small correlated dataset + query for plan-cache entries. *)
let tiny_instance () =
  let schema =
    S.create
      [
        A.discrete ~name:"c" ~cost:1.0 ~domain:2;
        A.discrete ~name:"x" ~cost:100.0 ~domain:2;
      ]
  in
  let rows = Array.init 100 (fun i -> [| i mod 4 / 3; i mod 4 / 3 |]) in
  let ds = DS.create schema rows in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  (ds, q)

let plan_result () =
  let ds, q = tiny_instance () in
  P.plan P.Heuristic q ~train:ds

(* ------------------------------------------------------------------ *)
(* Plan cache *)

let test_cache_validation () =
  try
    ignore (C.create ~capacity:0 ());
    Alcotest.fail "expected capacity failure"
  with Invalid_argument _ -> ()

let test_cache_signature_normalizes () =
  let _, q = tiny_instance () in
  let schema = Q.schema q in
  let reversed =
    Q.create schema (List.rev (Array.to_list (Q.predicates q)))
  in
  let s1 = C.signature ~algorithm:P.Heuristic q in
  let s2 = C.signature ~algorithm:P.Heuristic reversed in
  Alcotest.(check string) "predicate order irrelevant" s1 s2;
  (* Budgets and deadlines bound planning effort; they do not change
     which cached plan is valid, so they stay out of the key. *)
  let o1 = { P.default_options with search_budget = Some 10 } in
  let o2 =
    { P.default_options with search_budget = Some 99; deadline_ms = Some 5.0 }
  in
  Alcotest.(check string) "budget knobs excluded"
    (C.signature ~options:o1 ~algorithm:P.Heuristic q)
    (C.signature ~options:o2 ~algorithm:P.Heuristic q);
  (* Plan-shaping knobs, the algorithm, and the stats epoch are in. *)
  let o3 = { P.default_options with max_splits = 1 } in
  Alcotest.(check bool) "max_splits in key" false
    (C.signature ~options:o3 ~algorithm:P.Heuristic q
    = C.signature ~options:P.default_options ~algorithm:P.Heuristic q);
  Alcotest.(check bool) "algorithm in key" false
    (C.signature ~algorithm:P.Naive q = C.signature ~algorithm:P.Heuristic q);
  Alcotest.(check bool) "stats epoch in key" false
    (C.signature ~stats_epoch:1 ~algorithm:P.Heuristic q
    = C.signature ~stats_epoch:2 ~algorithm:P.Heuristic q)

let test_cache_lru_eviction () =
  let r = plan_result () in
  let c = C.create ~capacity:2 () in
  C.add c "e0|k1" r;
  C.add c "e0|k2" r;
  (* Touch k1 so k2 becomes the least recently used entry. *)
  Alcotest.(check bool) "k1 hit" true (C.find c "e0|k1" <> None);
  C.add c "e0|k3" r;
  Alcotest.(check bool) "k2 evicted" true (C.find c "e0|k2" = None);
  Alcotest.(check bool) "k1 survives" true (C.find c "e0|k1" <> None);
  Alcotest.(check bool) "k3 present" true (C.find c "e0|k3" <> None);
  let s = C.stats c in
  Alcotest.(check int) "hits" 3 s.C.hits;
  Alcotest.(check int) "misses" 1 s.C.misses;
  Alcotest.(check int) "evictions" 1 s.C.evictions;
  Alcotest.(check int) "size" 2 s.C.size;
  Alcotest.(check int) "capacity" 2 s.C.capacity

let test_cache_find_or_plan () =
  let c = C.create ~capacity:2 () in
  let calls = ref 0 in
  let thunk () =
    incr calls;
    plan_result ()
  in
  let r1 = C.find_or_plan c "e0|k" thunk in
  let r2 = C.find_or_plan c "e0|k" thunk in
  Alcotest.(check int) "planned once" 1 !calls;
  Alcotest.(check bool) "same plan" true (Plan.equal r1.P.plan r2.P.plan)

let test_cache_invalidate () =
  let _, q = tiny_instance () in
  let r = plan_result () in
  let c = C.create ~capacity:8 () in
  List.iter
    (fun e -> C.add c (C.signature ~stats_epoch:e ~algorithm:P.Heuristic q) r)
    [ 0; 1; 2 ];
  Alcotest.(check int) "three entries" 3 (C.size c);
  Alcotest.(check int) "two stale" 2 (C.invalidate c ~older_than:2);
  Alcotest.(check int) "one left" 1 (C.size c);
  Alcotest.(check bool) "survivor is epoch 2" true
    (C.find c (C.signature ~stats_epoch:2 ~algorithm:P.Heuristic q) <> None);
  Alcotest.(check int) "counter" 2 (C.stats c).C.invalidations

(* ------------------------------------------------------------------ *)
(* Policy *)

let obs ?(since = 1_000) ?(full = true) ?(drift = 0.0) ?(cost = 0.0)
    ?(expected = 100.0) ?(n = 1_000) () =
  {
    Pol.epochs_since_switch = since;
    window_full = full;
    drift;
    observed_cost = cost;
    expected_cost = expected;
    observations = n;
  }

let reason =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Pol.describe r))
    ( = )

let test_policy_static () =
  Alcotest.(check (option reason))
    "static never fires" None
    (Pol.evaluate Pol.static_ ~drift_armed:true
       (obs ~drift:1.0 ~cost:1e6 ()))

let test_policy_periodic () =
  let p = Pol.periodic 10 in
  Alcotest.(check (option reason))
    "before period" None
    (Pol.evaluate p ~drift_armed:true (obs ~since:9 ()));
  Alcotest.(check (option reason))
    "at period" (Some (Pol.Periodic 10))
    (Pol.evaluate p ~drift_armed:true (obs ~since:10 ()))

let test_policy_drift_hysteresis () =
  let p = Pol.drift_triggered ~cooldown:0 0.2 in
  let high = obs ~drift:0.3 () in
  Alcotest.(check (option reason))
    "fires armed" (Some (Pol.Drift 0.3))
    (Pol.evaluate p ~drift_armed:true high);
  Alcotest.(check (option reason))
    "silent disarmed" None
    (Pol.evaluate p ~drift_armed:false high);
  Alcotest.(check (option reason))
    "needs a full window" None
    (Pol.evaluate p ~drift_armed:true (obs ~drift:0.3 ~full:false ()));
  Alcotest.(check (option reason))
    "under watermark" None
    (Pol.evaluate p ~drift_armed:true (obs ~drift:0.15 ()));
  (* Re-arming waits for the low watermark (0.1 = 0.2 / 2). *)
  Alcotest.(check bool) "hovering does not re-arm" false
    (Pol.rearms p (obs ~drift:0.15 ()));
  Alcotest.(check bool) "re-arms under low" true
    (Pol.rearms p (obs ~drift:0.05 ()))

let test_policy_regret () =
  let p = Pol.drift_regret ~cooldown:0 0.2 ~regret:1.5 in
  Alcotest.(check (option reason))
    "over factor"
    (Some (Pol.Regret { observed = 200.0; expected = 100.0 }))
    (Pol.evaluate p ~drift_armed:true (obs ~cost:200.0 ()));
  Alcotest.(check (option reason))
    "under factor" None
    (Pol.evaluate p ~drift_armed:true (obs ~cost:140.0 ()));
  Alcotest.(check (option reason))
    "too few observations" None
    (Pol.evaluate p ~drift_armed:true (obs ~cost:200.0 ~n:3 ()))

let test_policy_cooldown () =
  let p = Pol.drift_triggered ~cooldown:100 0.2 in
  Alcotest.(check (option reason))
    "inside cooldown" None
    (Pol.evaluate p ~drift_armed:true (obs ~since:99 ~drift:0.9 ()));
  Alcotest.(check bool) "fires after cooldown" true
    (Pol.evaluate p ~drift_armed:true (obs ~since:100 ~drift:0.9 ()) <> None)

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_initial_plan () =
  let _, q, history = fixture () in
  let s = Sess.create ~algorithm:P.Corr_seq ~window:40 ~history q in
  Alcotest.(check bool) "fail-fast order [x1; x2]" true
    (Plan.equal (Sess.plan s) (Plan.sequential [ 0; 1 ]));
  Alcotest.(check (float 1.0)) "expected = 100 + P(x1=1)*100" 120.0
    (Sess.expected_cost s);
  Alcotest.(check bool) "serving" true (Sess.state s = Sess.Serving);
  Alcotest.(check int) "search effort recorded" 0
    (Sess.planning_nodes s);
  Alcotest.(check bool) "initial stats populated" true
    ((Sess.initial_stats s).Acq_core.Search.nodes_solved > 0)

let test_session_due_cadence () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let s = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  Alcotest.(check bool) "not due at 0" false (Sess.due s);
  for i = 0 to 8 do
    Sess.observe s ~cost:120.0 (phase_a_row i)
  done;
  Alcotest.(check bool) "not due at 9" false (Sess.due s);
  Sess.observe s ~cost:120.0 (phase_a_row 9);
  Alcotest.(check bool) "due at 10" true (Sess.due s)

let test_session_drift_switch () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let installed = ref [] in
  let on_switch plan sw = installed := (plan, sw) :: !installed in
  let s =
    Sess.create ~algorithm:P.Corr_seq ~policy ~on_switch ~window:40 ~history q
  in
  let sw = ref None in
  for i = 0 to 99 do
    match Sess.step s ~cost:120.0 (phase_b_row i) with
    | Some x -> sw := Some x
    | None -> ()
  done;
  (match !sw with
  | None -> Alcotest.fail "expected a plan switch"
  | Some sw ->
      (* Window fills at 40 (first possible drift alarm), the alarm
         must survive to the next check — the switch lands at 50. *)
      Alcotest.(check int) "switch epoch" 50 sw.Sess.epoch;
      (match sw.Sess.reason with
      | Pol.Drift d ->
          Alcotest.(check bool) "drift score above watermark" true (d > 0.3)
      | r -> Alcotest.fail ("expected drift trigger, got " ^ Pol.describe r));
      Alcotest.(check (float 1.0)) "old expected" 120.0 sw.Sess.old_expected;
      Alcotest.(check bool) "plan bytes positive" true (sw.Sess.plan_bytes > 0));
  Alcotest.(check bool) "order reversed to [x2; x1]" true
    (Plan.equal (Sess.plan s) (Plan.sequential [ 1; 0 ]));
  Alcotest.(check int) "exactly one replan" 1 (Sess.replans s);
  Alcotest.(check int) "exactly one switch" 1 (List.length (Sess.switches s));
  Alcotest.(check int) "on_switch called once" 1 (List.length !installed);
  Alcotest.(check bool) "callback got the installed plan" true
    (Plan.equal (fst (List.hd !installed)) (Sess.plan s));
  Alcotest.(check bool) "back to serving" true (Sess.state s = Sess.Serving);
  Alcotest.(check bool) "drift settled after rebase" true (Sess.drift s < 0.1);
  (* The full state trajectory went through every machine state. *)
  let states = List.map snd (Sess.transitions s) in
  List.iter
    (fun st ->
      Alcotest.(check bool) "state visited" true (List.mem st states))
    [ Sess.Serving; Sess.Drifting; Sess.Replanning; Sess.Switching ];
  Alcotest.(check bool) "search effort accounted" true
    (Sess.planning_nodes s > 0)

let test_session_hysteresis_clears () =
  let _, q, history = fixture () in
  (* Regret-only policy: drift off, fires when realized cost runs 50%
     over the estimate. *)
  let policy =
    {
      Pol.static_ with
      check_every = 5;
      cooldown = 0;
      regret_factor = Some 1.5;
      min_observations = 3;
    }
  in
  let s = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  let expected = Sess.expected_cost s in
  (* Five pricey epochs raise the alarm... *)
  for i = 0 to 4 do
    ignore (Sess.step s ~cost:(expected *. 1.6) (phase_a_row i))
  done;
  Alcotest.(check bool) "alarm raised" true (Sess.state s = Sess.Drifting);
  (* ...five free ones drag the mean back under the bar before the
     confirming check: hysteresis clears without a replan. *)
  for i = 5 to 9 do
    ignore (Sess.step s ~cost:0.0 (phase_a_row i))
  done;
  Alcotest.(check bool) "alarm cleared" true (Sess.state s = Sess.Serving);
  Alcotest.(check int) "no replans" 0 (Sess.replans s);
  Alcotest.(check (list (pair int reason))) "no switches recorded" []
    (List.map (fun (sw : Sess.switch) -> (sw.Sess.epoch, sw.Sess.reason))
       (Sess.switches s))

let test_session_same_plan_no_switch () =
  let _, q, history = fixture () in
  let policy =
    {
      Pol.static_ with
      check_every = 5;
      cooldown = 0;
      regret_factor = Some 1.5;
      min_observations = 3;
    }
  in
  let s = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  let expected = Sess.expected_cost s in
  (* Sustained (phantom) regret on phase-A data: the confirmed trigger
     replans, the window agrees with history, the plan comes back
     identical — statistics refresh, no switch, no dissemination. *)
  for i = 0 to 59 do
    ignore (Sess.step s ~cost:(expected *. 2.0) (phase_a_row i))
  done;
  Alcotest.(check bool) "replanned at least once" true (Sess.replans s >= 1);
  Alcotest.(check int) "never switched" 0 (List.length (Sess.switches s));
  Alcotest.(check bool) "plan unchanged" true
    (Plan.equal (Sess.plan s) (Plan.sequential [ 0; 1 ]));
  Alcotest.(check bool) "serving" true (Sess.state s = Sess.Serving)

let test_session_failed_replan () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  (* A zero-node budget: every confirmed replan exhausts the Search
     budget and the old plan keeps serving. *)
  let s =
    Sess.create ~algorithm:P.Corr_seq ~policy ~replan_budget:0 ~window:40
      ~history q
  in
  (* 50 epochs: alarm at 40, confirmed-but-failed replan at 50. *)
  for i = 0 to 49 do
    ignore (Sess.step s ~cost:120.0 (phase_b_row i))
  done;
  Alcotest.(check bool) "failed at least once" true (Sess.failed_replans s >= 1);
  Alcotest.(check int) "no successful replans" 0 (Sess.replans s);
  Alcotest.(check int) "no switches" 0 (List.length (Sess.switches s));
  Alcotest.(check bool) "old plan still serving" true
    (Plan.equal (Sess.plan s) (Plan.sequential [ 0; 1 ]));
  Alcotest.(check bool) "recovered to serving" true
    (Sess.state s = Sess.Serving)

let test_session_budget_starved_defers () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let s = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  for i = 0 to 39 do
    Sess.observe s ~cost:120.0 (phase_b_row i)
  done;
  Alcotest.(check bool) "first check raises the alarm" true
    (Sess.check ~max_nodes:0 s = None && Sess.state s = Sess.Drifting);
  Alcotest.(check bool) "starved check defers, stays drifting" true
    (Sess.check ~max_nodes:0 s = None && Sess.state s = Sess.Drifting);
  (* Budget restored: the still-confirmed trigger replans immediately. *)
  Alcotest.(check bool) "funded check switches" true
    (Sess.check s <> None && Sess.state s = Sess.Serving)

let test_session_cache_shared () =
  let _, q, history = fixture () in
  let cache = C.create ~capacity:8 () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let mk () =
    Sess.create ~algorithm:P.Corr_seq ~policy ~cache ~window:40 ~history q
  in
  let s1 = mk () in
  ignore s1;
  let s2 = mk () in
  (* The second session's initial plan comes straight from the cache. *)
  Alcotest.(check int) "one miss, one hit" 1 (C.stats cache).C.hits;
  let drive s =
    for i = 0 to 59 do
      ignore (Sess.step s ~cost:120.0 (phase_b_row i))
    done
  in
  drive s2;
  Alcotest.(check int) "replan missed (epoch 1 not cached)" 2
    (C.stats cache).C.misses;
  let s3 = mk () in
  drive s3;
  (* Same trajectory: s3's replan hits s2's epoch-1 entry. *)
  Alcotest.(check int) "replan shared across sessions" 3
    (C.stats cache).C.hits;
  Alcotest.(check bool) "cached switch marked" true
    (List.exists
       (fun (sw : Sess.switch) -> sw.Sess.cache_hit)
       (Sess.switches s3))

(* ------------------------------------------------------------------ *)
(* Supervisor *)

let test_supervisor_validation () =
  try
    ignore (Sup.create []);
    Alcotest.fail "expected empty-session failure"
  with Invalid_argument _ -> ()

let test_supervisor_metering_and_switches () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let mk () = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  let sup = Sup.create [ mk (); mk () ] in
  for i = 0 to 59 do
    let outcomes = Sup.step sup (phase_b_row i) in
    Alcotest.(check int) "one outcome per session" 2 (Array.length outcomes)
  done;
  Alcotest.(check int) "epochs" 60 (Sup.epoch sup);
  (* Phase B satisfies x1=1 AND x2=1 on every i mod 5 = 0 row: 12 of
     60 rows, for each of the two sessions. *)
  Alcotest.(check int) "matches metered per session" 24 (Sup.matches sup);
  Alcotest.(check bool) "acquisition metered" true
    (Sup.acquisition_cost sup > 0.0);
  let switches = Sup.switches sup in
  Alcotest.(check int) "both sessions switched" 2 (List.length switches);
  Alcotest.(check (list int)) "tagged with session index" [ 0; 1 ]
    (List.sort compare (List.map fst switches));
  Alcotest.(check int) "switch bytes summed"
    (List.fold_left
       (fun a (_, (sw : Sess.switch)) -> a + sw.Sess.plan_bytes)
       0 switches)
    (Sup.switch_bytes sup);
  Alcotest.(check int) "nothing deferred" 0 (Sup.deferred_replans sup)

let test_supervisor_shared_budget () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let mk () = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  let sup = Sup.create ~planning_budget:0 [ mk (); mk () ] in
  for i = 0 to 59 do
    ignore (Sup.step sup (phase_b_row i))
  done;
  Alcotest.(check int) "no switches without budget" 0
    (List.length (Sup.switches sup));
  Alcotest.(check bool) "confirmed triggers deferred" true
    (Sup.deferred_replans sup > 0);
  Alcotest.(check int) "budget exhausted" 0 (Sup.budget_remaining sup);
  List.iter
    (fun s ->
      Alcotest.(check bool) "sessions parked drifting" true
        (Sess.state s = Sess.Drifting))
    (Sup.sessions sup)

let test_supervisor_budget_drains () =
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let mk () = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  let budget = 1_000_000 in
  let sup = Sup.create ~planning_budget:budget [ mk () ] in
  for i = 0 to 59 do
    ignore (Sup.step sup (phase_b_row i))
  done;
  let spent = budget - Sup.budget_remaining sup in
  Alcotest.(check bool) "replan charged to the shared budget" true (spent > 0);
  Alcotest.(check int) "charge equals the session's planning nodes" spent
    (List.fold_left (fun a s -> a + Sess.planning_nodes s) 0 (Sup.sessions sup))

let test_supervisor_register_drift_unregister () =
  (* The daemon lifecycle: dynamic registration, a drift that parks on
     an exhausted budget, then unregistration that releases the park
     and leaves no leaked sessions or dangling budget claims. *)
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let mk () = Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q in
  let sup = Sup.create_empty ~planning_budget:0 () in
  Alcotest.(check int) "starts empty" 0 (List.length (Sup.sessions sup));
  Alcotest.(check (array int)) "empty step" [||]
    (Array.map (fun _ -> 0) (Sup.step sup (phase_b_row 0)));
  let id_a = Sup.register sup (mk ()) in
  let id_b = Sup.register sup (mk ()) in
  Alcotest.(check bool) "distinct ids" true (id_a <> id_b);
  for i = 0 to 59 do
    let outcomes = Sup.step sup (phase_b_row i) in
    Alcotest.(check int) "one outcome per live session" 2
      (Array.length outcomes)
  done;
  (* Budget 0: both sessions confirmed their drift trigger and parked. *)
  Alcotest.(check int) "both parked" 2 (Sup.parked_sessions sup);
  Alcotest.(check bool) "replans deferred" true (Sup.deferred_replans sup > 0);
  Alcotest.(check bool) "released a parked replan" true
    (Sup.unregister sup id_a);
  Alcotest.(check int) "one park released" 1 (Sup.released_parked sup);
  Alcotest.(check int) "one session left" 1 (List.length (Sup.sessions sup));
  Alcotest.(check int) "one park left" 1 (Sup.parked_sessions sup);
  Alcotest.(check bool) "double unregister is false" false
    (Sup.unregister sup id_a);
  Alcotest.(check bool) "lookup removed id" true (Sup.session sup id_a = None);
  (* The survivor still serves alone. *)
  let outcomes = Sup.step sup (phase_b_row 60) in
  Alcotest.(check int) "survivor outcome" 1 (Array.length outcomes);
  Alcotest.(check bool) "second release" true (Sup.unregister sup id_b);
  Alcotest.(check int) "no sessions leaked" 0 (List.length (Sup.sessions sup));
  Alcotest.(check int) "no parks leaked" 0 (Sup.parked_sessions sup);
  Alcotest.(check int) "no live budget charges" 0 (Sup.charged_nodes sup);
  Alcotest.(check int) "unregistrations counted" 2 (Sup.unregistered sup);
  Alcotest.(check (array int)) "empty again" [||]
    (Array.map (fun _ -> 0) (Sup.step sup (phase_b_row 61)))

let test_supervisor_register_charges_budget () =
  (* A dynamically registered session replans out of the shared budget
     and its charge is settled (dropped from charged_nodes) when it
     leaves. *)
  let _, q, history = fixture () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let budget = 1_000_000 in
  let sup = Sup.create_empty ~planning_budget:budget () in
  let id =
    Sup.register sup
      (Sess.create ~algorithm:P.Corr_seq ~policy ~window:40 ~history q)
  in
  for i = 0 to 59 do
    ignore (Sup.step sup (phase_b_row i))
  done;
  let spent = budget - Sup.budget_remaining sup in
  Alcotest.(check bool) "replan charged" true (spent > 0);
  Alcotest.(check int) "ledger matches" spent (Sup.charged_nodes sup);
  Alcotest.(check bool) "switched" true (List.length (Sup.switches sup) > 0);
  Alcotest.(check (list int)) "switches tagged with id" [ id ]
    (List.sort_uniq compare (List.map fst (Sup.switches sup)));
  ignore (Sup.unregister sup id : bool);
  Alcotest.(check int) "charge settled on departure" 0
    (Sup.charged_nodes sup);
  Alcotest.(check int) "spent nodes stay spent" (budget - spent)
    (Sup.budget_remaining sup)

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_adapt_telemetry () =
  let _, q, history = fixture () in
  let m = Acq_obs.Metrics.create () in
  let telemetry = Acq_obs.Telemetry.create ~metrics:m () in
  let cache = C.create ~telemetry ~capacity:4 () in
  let policy = Pol.drift_triggered ~check_every:10 ~cooldown:0 0.3 in
  let s =
    Sess.create ~telemetry ~cache ~algorithm:P.Corr_seq ~policy ~window:40
      ~history q
  in
  for i = 0 to 59 do
    ignore (Sess.step s ~cost:120.0 (phase_b_row i))
  done;
  let snap = Acq_obs.Metrics.snapshot m in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " recorded") true
        (List.exists
           (fun (k, v) ->
             (* Keys render as name{labels}; match on the family. *)
             String.length k >= String.length name
             && String.sub k 0 (String.length name) = name
             && v > 0.0)
           snap))
    [
      "acqp_adapt_replans_total";
      "acqp_adapt_switches_total";
      "acqp_adapt_switch_bytes_total";
      "acqp_adapt_cache_misses_total";
      "acqp_adapt_cache_size";
    ]

(* ------------------------------------------------------------------ *)
(* End-to-end acceptance: the bench scenario, asserted. *)

let adapt_params = { Acq_data.Synthetic_gen.n = 12; gamma = 2; sel = 0.25 }
let change_points = [ 2_000; 4_000 ]

let acceptance_setup () =
  let history =
    Acq_data.Synthetic_gen.generate (Rng.create 71) adapt_params ~rows:2_000
  in
  let schema = DS.schema history in
  let q = Acq_workload.Query_gen.synthetic_query adapt_params ~schema in
  let options =
    {
      P.default_options with
      candidate_attrs = Some (S.cheap_indices schema);
      max_splits = 3;
    }
  in
  (history, q, options)

let drift_policy () = Pol.drift_triggered ~check_every:32 ~cooldown:128 0.10

let run_policy ~history ~options ~live q policy =
  Acq_sensor.Runtime.run_adaptive ~options ~policy ~window:256
    ~algorithm:P.Heuristic ~history ~live q

let test_adaptive_beats_static_on_drift () =
  let module Rt = Acq_sensor.Runtime in
  let history, q, options = acceptance_setup () in
  let live =
    Acq_data.Synthetic_gen.generate_drifting (Rng.create 72) adapt_params
      ~rows:6_000 ~change_points
  in
  let static_r = run_policy ~history ~options ~live q Pol.static_ in
  let adaptive = run_policy ~history ~options ~live q (drift_policy ()) in
  Alcotest.(check bool) "static correct" true static_r.Rt.a_correct;
  Alcotest.(check bool) "adaptive correct" true adaptive.Rt.a_correct;
  Alcotest.(check int) "static never replans" 0 static_r.Rt.a_replans;
  (* The acceptance bar: >= 15% total energy saved (dissemination of
     every switch included), within change_points + 2 replans. *)
  Alcotest.(check bool)
    (Printf.sprintf "adaptive total %.0f <= 0.85 * static total %.0f"
       adaptive.Rt.a_total_energy static_r.Rt.a_total_energy)
    true
    (adaptive.Rt.a_total_energy <= 0.85 *. static_r.Rt.a_total_energy);
  Alcotest.(check bool)
    (Printf.sprintf "replans %d within change points + 2" adaptive.Rt.a_replans)
    true
    (adaptive.Rt.a_replans <= List.length change_points + 2);
  Alcotest.(check int) "no failed replans" 0 adaptive.Rt.a_failed_replans;
  Alcotest.(check bool) "at least one switch per change point" true
    (List.length adaptive.Rt.switches >= List.length change_points);
  List.iter
    (fun (sw : Sess.switch) ->
      match sw.Sess.reason with
      | Pol.Drift _ -> ()
      | r -> Alcotest.fail ("non-drift trigger fired: " ^ Pol.describe r))
    adaptive.Rt.switches

let test_adaptive_quiet_on_stationary () =
  let module Rt = Acq_sensor.Runtime in
  let history, q, options = acceptance_setup () in
  let live =
    Acq_data.Synthetic_gen.generate (Rng.create 73) adapt_params ~rows:6_000
  in
  let static_r = run_policy ~history ~options ~live q Pol.static_ in
  let adaptive = run_policy ~history ~options ~live q (drift_policy ()) in
  Alcotest.(check int) "no drift replans on stationary data" 0
    adaptive.Rt.a_replans;
  Alcotest.(check int) "no switches" 0 (List.length adaptive.Rt.switches);
  (* Same plan served end to end: energy within noise of static. *)
  Alcotest.(check bool) "energy within 0.5% of static" true
    (Float.abs (adaptive.Rt.a_total_energy -. static_r.Rt.a_total_energy)
    <= 0.005 *. static_r.Rt.a_total_energy)

let test_replan_buffer_reuse () =
  (* The replanning hot path (Sliding.backend) must not rebuild the
     window's statistics storage: once the two rotating cell buffers
     and the identity-id array are warm, each push + backend cycle
     allocates only the view/backend wrappers. Copying the window
     instead would cost capacity * arity boxed ints (>= 64 KiB here)
     per replan. *)
  let module Sl = Acq_prob.Sliding in
  let schema = drift_schema () in
  let w = Sl.create schema ~capacity:4_096 in
  for i = 0 to 4_095 do
    Sl.push w (phase_a_row i)
  done;
  (* Warm both buffers and the cached id array. *)
  for i = 0 to 2 do
    Sl.push w (phase_a_row i);
    ignore (Sl.backend w)
  done;
  let cycles = 40 in
  let before = Gc.allocated_bytes () in
  for i = 0 to cycles - 1 do
    Sl.push w (phase_a_row i);
    ignore (Sl.backend w)
  done;
  let per_cycle = (Gc.allocated_bytes () -. before) /. float_of_int cycles in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state replan allocates O(1) (%.0f bytes/cycle)"
       per_cycle)
    true
    (per_cycle < 8_192.0)

let () =
  Alcotest.run "adapt"
    [
      ( "plan cache",
        [
          Alcotest.test_case "validation" `Quick test_cache_validation;
          Alcotest.test_case "signature normalizes" `Quick
            test_cache_signature_normalizes;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "find_or_plan" `Quick test_cache_find_or_plan;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        ] );
      ( "policy",
        [
          Alcotest.test_case "static" `Quick test_policy_static;
          Alcotest.test_case "periodic" `Quick test_policy_periodic;
          Alcotest.test_case "drift hysteresis" `Quick
            test_policy_drift_hysteresis;
          Alcotest.test_case "regret" `Quick test_policy_regret;
          Alcotest.test_case "cooldown" `Quick test_policy_cooldown;
        ] );
      ( "session",
        [
          Alcotest.test_case "initial plan" `Quick test_session_initial_plan;
          Alcotest.test_case "due cadence" `Quick test_session_due_cadence;
          Alcotest.test_case "drift switch" `Quick test_session_drift_switch;
          Alcotest.test_case "hysteresis clears" `Quick
            test_session_hysteresis_clears;
          Alcotest.test_case "same plan no switch" `Quick
            test_session_same_plan_no_switch;
          Alcotest.test_case "failed replan" `Quick test_session_failed_replan;
          Alcotest.test_case "budget starved defers" `Quick
            test_session_budget_starved_defers;
          Alcotest.test_case "shared cache" `Quick test_session_cache_shared;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "validation" `Quick test_supervisor_validation;
          Alcotest.test_case "metering and switches" `Quick
            test_supervisor_metering_and_switches;
          Alcotest.test_case "shared budget" `Quick
            test_supervisor_shared_budget;
          Alcotest.test_case "budget drains" `Quick
            test_supervisor_budget_drains;
          Alcotest.test_case "register/drift/unregister" `Quick
            test_supervisor_register_drift_unregister;
          Alcotest.test_case "dynamic budget settlement" `Quick
            test_supervisor_register_charges_budget;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "adapt series" `Quick test_adapt_telemetry ] );
      ( "acceptance",
        [
          Alcotest.test_case "beats static on drifting trace" `Quick
            test_adaptive_beats_static_on_drift;
          Alcotest.test_case "quiet on stationary trace" `Quick
            test_adaptive_quiet_on_stationary;
          Alcotest.test_case "replan reuses window buffers" `Quick
            test_replan_buffer_reuse;
        ] );
    ]
