(* Unit tests for Acq_obs: the metrics registry (histogram edge cases
   in particular), span nesting and ordering under an injected clock,
   the self-hosted JSON parser, the legacy Search trace shim, and a
   golden check that a small Runtime.run emits a parseable Chrome
   trace and a stable metrics dump. *)

module M = Acq_obs.Metrics
module J = Acq_obs.Json
module Tr = Acq_obs.Tracer
module Sp = Acq_obs.Span
module T = Acq_obs.Telemetry

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_basics () =
  let m = M.create () in
  let c = M.counter m ~help:"h" "requests_total" in
  M.incr c;
  M.add c 2.5;
  Alcotest.(check (float 1e-9)) "value" 3.5 (M.counter_value c);
  let c' = M.counter m "requests_total" in
  M.incr c';
  Alcotest.(check (float 1e-9)) "same instrument" 4.5 (M.counter_value c);
  Alcotest.check_raises "monotone"
    (Invalid_argument "Metrics.add: counters are monotone") (fun () ->
      M.add c (-1.0));
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: requests_total already registered as a counter")
    (fun () -> ignore (M.histogram m "requests_total" : M.histogram))

let test_labels_distinct () =
  let m = M.create () in
  let a = M.counter m ~labels:[ ("algorithm", "naive") ] "plans_total" in
  let b = M.counter m ~labels:[ ("algorithm", "greedy") ] "plans_total" in
  M.incr a;
  M.incr a;
  M.incr b;
  Alcotest.(check (float 1e-9)) "a" 2.0 (M.counter_value a);
  Alcotest.(check (float 1e-9)) "b" 1.0 (M.counter_value b);
  (* Label order does not create a new series. *)
  let a' =
    M.counter m ~labels:[ ("algorithm", "naive") ] "plans_total"
  in
  M.incr a';
  Alcotest.(check (float 1e-9)) "normalized" 3.0 (M.counter_value a)

let test_histogram_zero_observations () =
  let m = M.create () in
  let h = M.histogram m "empty_ms" in
  Alcotest.(check int) "count" 0 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 0.0 (M.hist_sum h);
  Array.iter
    (fun c -> Alcotest.(check int) "bucket" 0 c)
    (M.bucket_counts h);
  (* The dump still renders the empty histogram. *)
  let dump = M.to_prometheus m in
  Alcotest.(check bool) "count line" true
    (is_infix ~affix:"empty_ms_count 0" dump)

let test_histogram_one_bucket () =
  let m = M.create () in
  let h = M.histogram m ~lowest:10.0 ~growth:2.0 ~buckets:1 "one_ms" in
  M.observe h 5.0;
  (* <= 10 -> finite bucket *)
  M.observe h 50.0;
  (* > 10 -> overflow bucket *)
  let counts = M.bucket_counts h in
  Alcotest.(check int) "cells: finite + overflow" 2 (Array.length counts);
  Alcotest.(check int) "finite" 1 counts.(0);
  Alcotest.(check int) "overflow" 1 counts.(1);
  Alcotest.(check int) "count" 2 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 55.0 (M.hist_sum h)

let test_histogram_overflow_bucket () =
  let m = M.create () in
  let h = M.histogram m ~lowest:0.001 ~growth:4.0 ~buckets:20 "big_ms" in
  M.observe h infinity;
  M.observe h 1e300;
  let counts = M.bucket_counts h in
  Alcotest.(check int) "overflow holds both" 2
    counts.(Array.length counts - 1);
  (* Cumulative rendering: the +Inf bucket equals the total count. *)
  let dump = M.to_prometheus m in
  Alcotest.(check bool) "+Inf bucket" true
    (is_infix ~affix:"le=\"+Inf\"} 2" dump)

let test_histogram_bucket_boundaries () =
  let m = M.create () in
  let h = M.histogram m ~lowest:1.0 ~growth:2.0 ~buckets:3 "b_ms" in
  (* Upper bounds 1, 2, 4 are inclusive (Prometheus [le] semantics):
     0.5 and 1.0 land in bucket 0, 2.0 in bucket 1, 3.0 and 4.0 in
     bucket 2, 9.0 overflows. *)
  List.iter (M.observe h) [ 0.5; 1.0; 2.0; 3.0; 4.0; 9.0 ];
  let counts = M.bucket_counts h in
  Alcotest.(check (list int)) "per-bucket" [ 2; 1; 2; 1 ]
    (Array.to_list counts)

let test_merge_into_histograms () =
  let src = M.create () in
  let dst = M.create () in
  let hist m = M.histogram m ~lowest:1.0 ~growth:2.0 ~buckets:3 "lat_ms" in
  let hs = hist src and hd = hist dst in
  List.iter (M.observe hs) [ 0.5; 2.0; 9.0 ];
  List.iter (M.observe hd) [ 1.0; 3.0 ];
  let cs = M.counter src "tuples_total" and cd = M.counter dst "tuples_total" in
  M.add cs 5.0;
  M.add cd 2.0;
  let g = M.gauge src "energy_j" in
  M.set g 1.5;
  (* A family only [src] has must appear in [dst] after the merge. *)
  let only = M.counter src "src_only_total" in
  M.incr only;
  M.merge_into ~src ~dst;
  Alcotest.(check int) "hist count summed" 5 (M.hist_count hd);
  Alcotest.(check (float 1e-9)) "hist sum summed" 15.5 (M.hist_sum hd);
  Alcotest.(check (list int)) "buckets summed element-wise" [ 2; 1; 1; 1 ]
    (Array.to_list (M.bucket_counts hd));
  Alcotest.(check (float 1e-9)) "counter added" 7.0 (M.counter_value cd);
  Alcotest.(check (float 1e-9)) "gauge accumulates" 1.5
    (M.gauge_value (M.gauge dst "energy_j"));
  Alcotest.(check (float 1e-9)) "src-only family registered" 1.0
    (M.counter_value (M.counter dst "src_only_total"));
  (* src untouched. *)
  Alcotest.(check int) "src hist unchanged" 3 (M.hist_count hs);
  Alcotest.(check (float 1e-9)) "src counter unchanged" 5.0
    (M.counter_value cs)

let test_merge_into_histograms_deterministic () =
  (* Same shard observations, two merge runs → bit-identical dst
     state, and shard order is the caller's submission order. *)
  let shard obs =
    let m = M.create () in
    let h = M.histogram m ~lowest:1.0 ~growth:2.0 ~buckets:3 "lat_ms" in
    List.iter (M.observe h) obs;
    m
  in
  let shards () = [ shard [ 0.5; 4.0 ]; shard [ 2.0 ]; shard [ 9.0; 9.0 ] ] in
  let run () =
    let dst = M.create () in
    List.iter (fun src -> M.merge_into ~src ~dst) (shards ());
    M.snapshot dst
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "snapshots identical" true (a = b);
  Alcotest.(check (option (float 1e-9))) "total count" (Some 5.0)
    (M.find a "lat_ms_count")

let test_merge_into_rejects_mismatch () =
  let src = M.create () in
  let dst = M.create () in
  ignore (M.histogram src ~lowest:1.0 ~growth:2.0 ~buckets:3 "lat_ms"
          : M.histogram);
  ignore (M.histogram dst ~lowest:1.0 ~growth:4.0 ~buckets:3 "lat_ms"
          : M.histogram);
  Alcotest.(check bool) "different bucket bounds rejected" true
    (match M.merge_into ~src ~dst with
    | exception Invalid_argument _ -> true
    | () -> false);
  let src = M.create () in
  ignore (M.counter src "lat_ms" : M.counter);
  Alcotest.(check bool) "kind clash rejected" true
    (match M.merge_into ~src ~dst with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_snapshot_diff () =
  let m = M.create () in
  let c = M.counter m "x_total" in
  M.incr c;
  let before = M.snapshot m in
  M.incr c;
  M.incr c;
  let after = M.snapshot m in
  let d = M.diff after before in
  Alcotest.(check (option (float 1e-9))) "delta" (Some 2.0)
    (M.find d "x_total");
  Alcotest.(check (option (float 1e-9))) "absolute" (Some 3.0)
    (M.find after "x_total")

(* ------------------------------------------------------------------ *)
(* Spans *)

let fake_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

let test_span_nesting_and_ordering () =
  let clock, advance = fake_clock () in
  let tr = Tr.create ~clock () in
  Tr.span tr "outer" (fun () ->
      advance 0.001;
      Alcotest.(check int) "depth inside outer" 1 (Tr.depth tr);
      Tr.span tr "inner" (fun () ->
          advance 0.002;
          Alcotest.(check int) "depth inside inner" 2 (Tr.depth tr));
      advance 0.001);
  Alcotest.(check int) "depth restored" 0 (Tr.depth tr);
  match Tr.items tr with
  | [ Sp.Complete inner; Sp.Complete outer ] ->
      (* Chronological recording order: inner closes first. *)
      Alcotest.(check string) "inner name" "inner" inner.Sp.name;
      Alcotest.(check string) "outer name" "outer" outer.Sp.name;
      Alcotest.(check int) "inner depth" 1 inner.Sp.depth;
      Alcotest.(check int) "outer depth" 0 outer.Sp.depth;
      Alcotest.(check (float 1e-6)) "inner start" 1000.0 inner.Sp.start_us;
      Alcotest.(check (float 1e-6)) "inner dur" 2000.0 inner.Sp.dur_us;
      Alcotest.(check (float 1e-6)) "outer start" 0.0 outer.Sp.start_us;
      Alcotest.(check (float 1e-6)) "outer dur" 4000.0 outer.Sp.dur_us;
      (* Containment: the property Chrome uses to nest tid-0 spans. *)
      Alcotest.(check bool) "contained" true
        (outer.Sp.start_us <= inner.Sp.start_us
        && inner.Sp.start_us +. inner.Sp.dur_us
           <= outer.Sp.start_us +. outer.Sp.dur_us)
  | items ->
      Alcotest.failf "expected two complete spans, got %d items"
        (List.length items)

let test_span_records_on_exception () =
  let clock, advance = fake_clock () in
  let tr = Tr.create ~clock () in
  (try
     Tr.span tr "failing" (fun () ->
         advance 0.005;
         failwith "boom")
   with Failure _ -> ());
  match Tr.items tr with
  | [ Sp.Complete s ] ->
      Alcotest.(check string) "name" "failing" s.Sp.name;
      Alcotest.(check (float 1e-6)) "duration" 5000.0 s.Sp.dur_us;
      Alcotest.(check int) "depth restored" 0 (Tr.depth tr)
  | _ -> Alcotest.fail "span was not recorded on exception"

let test_tracer_chrome_export () =
  let clock, advance = fake_clock () in
  let tr = Tr.create ~clock () in
  Tr.span tr ~cat:"t" ~attrs:[ ("k", "v") ] "s" (fun () -> advance 0.001);
  Tr.event tr "ping";
  Tr.sample tr "energy" [ ("acq", 1.5) ];
  match J.parse (Tr.to_chrome tr) with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok (J.Arr events) ->
      Alcotest.(check int) "three events" 3 (List.length events);
      let phases =
        List.map
          (fun ev ->
            match J.member "ph" ev with Some (J.Str p) -> p | _ -> "?")
          events
      in
      Alcotest.(check (list string)) "phases" [ "X"; "i"; "C" ] phases
  | Ok _ -> Alcotest.fail "chrome export is not a JSON array"

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("n", J.Num 1.5);
        ("i", J.Num 42.0);
        ("b", J.Bool true);
        ("z", J.Null);
        ("a", J.Arr [ J.Num 1.0; J.Str "x" ]);
      ]
  in
  match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted garbage: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "[1] trailing" ]

let test_json_unicode_escape () =
  match J.parse {|"é\t"|} with
  | Ok (J.Str s) -> Alcotest.(check string) "utf8" "\xc3\xa9\t" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Telemetry handle + legacy Search trace shim *)

let test_noop_is_disabled () =
  Alcotest.(check bool) "noop disabled" false (T.enabled T.noop);
  Alcotest.(check bool) "empty create is noop" false
    (T.enabled (T.create ()));
  (* All operations are safe no-ops. *)
  T.incr T.noop "x_total";
  T.observe T.noop "y_ms" 1.0;
  Alcotest.(check int) "span runs thunk" 3 (T.span T.noop "s" (fun () -> 3))

let test_legacy_trace_shim () =
  let lines = ref [] in
  let obs = T.add_event_sink T.noop (fun s -> lines := s :: !lines) in
  T.event obs "greedy: picked split on light";
  Alcotest.(check (list string)) "forwarded" [ "greedy: picked split on light" ]
    (List.rev !lines);
  (* The same shim through the retired Search ?trace argument. *)
  let lines' = ref [] in
  let search =
    Acq_core.Search.create ~trace:(fun s -> lines' := s :: !lines') ()
  in
  Acq_core.Search.trace search (fun () -> "expanding node 7");
  Alcotest.(check (list string)) "search trace forwarded"
    [ "expanding node 7" ] (List.rev !lines');
  (* Without any sink the thunk must not even be forced. *)
  let forced = ref false in
  let plain = Acq_core.Search.create () in
  Acq_core.Search.trace plain (fun () ->
      forced := true;
      "never");
  Alcotest.(check bool) "lazy when disabled" false !forced

(* ------------------------------------------------------------------ *)
(* Golden: a small Runtime.run under full telemetry *)

let small_runtime obs =
  let ds = Acq_data.Lab_gen.generate (Acq_util.Rng.create 77) ~rows:1_200 in
  let history, live = Acq_data.Dataset.split_by_time ds ~train_fraction:0.5 in
  let q = Acq_workload.Query_gen.lab_query (Acq_util.Rng.create 7) ~train:history in
  Acq_sensor.Runtime.run ~telemetry:obs ~algorithm:Acq_core.Planner.Heuristic
    ~history ~live q

let stable_snapshot m =
  (* Drop wall-clock-dependent series; everything else must be
     deterministic. *)
  List.filter
    (fun (k, _) ->
      not
        (is_infix ~affix:"_ms_" k
        || is_infix ~affix:"_ms{" k
        || String.ends_with ~suffix:"_ms" k))
    (M.snapshot m)

let test_runtime_golden () =
  let run () =
    let m = M.create () in
    let tr = Tr.create ~clock:(fun () -> 0.0) () in
    let report = small_runtime (T.create ~metrics:m ~tracer:tr ()) in
    (m, tr, report)
  in
  let m1, tr1, report = run () in
  (* The Chrome export parses and is a non-empty event array. *)
  (match J.parse (Tr.to_chrome tr1) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok (J.Arr events) ->
      Alcotest.(check bool) "events recorded" true (List.length events > 0);
      List.iter
        (fun ev ->
          match (J.member "name" ev, J.member "ph" ev) with
          | Some (J.Str _), Some (J.Str _) -> ()
          | _ -> Alcotest.fail "event missing name/ph")
        events
  | Ok _ -> Alcotest.fail "trace is not an array");
  (* The report carries the registry snapshot. *)
  Alcotest.(check bool) "report metrics attached" true
    (report.Acq_sensor.Runtime.metrics <> []);
  Alcotest.(check (option (float 1e-9)))
    "epochs counted" (Some (float_of_int report.Acq_sensor.Runtime.epochs))
    (M.find report.Acq_sensor.Runtime.metrics "acqp_runtime_epochs_total");
  (* With timestamps zeroed, two identical runs dump identically. *)
  let m2, _, _ = run () in
  Alcotest.(check bool) "stable metrics dump" true
    (stable_snapshot m1 = stable_snapshot m2);
  Alcotest.(check bool) "stable dump is non-trivial" true
    (List.length (stable_snapshot m1) > 10)

let test_runtime_noop_unchanged () =
  (* The uninstrumented path returns the same verdicts and energy. *)
  let r0 = small_runtime T.noop in
  let m = M.create () in
  let r1 = small_runtime (T.create ~metrics:m ()) in
  Alcotest.(check int) "matches" r0.Acq_sensor.Runtime.matches
    r1.Acq_sensor.Runtime.matches;
  Alcotest.(check (float 1e-6)) "energy" r0.Acq_sensor.Runtime.total_energy
    r1.Acq_sensor.Runtime.total_energy;
  Alcotest.(check int) "plan bytes"
    (Acq_sensor.Runtime.plan_bytes r0)
    (Acq_sensor.Runtime.plan_bytes r1);
  Alcotest.(check bool) "noop report has no metrics" true
    (r0.Acq_sensor.Runtime.metrics = [])

let () =
  Alcotest.run "acq_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "label sets" `Quick test_labels_distinct;
          Alcotest.test_case "histogram: zero observations" `Quick
            test_histogram_zero_observations;
          Alcotest.test_case "histogram: one bucket" `Quick
            test_histogram_one_bucket;
          Alcotest.test_case "histogram: overflow bucket" `Quick
            test_histogram_overflow_bucket;
          Alcotest.test_case "histogram: bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "merge_into: histograms" `Quick
            test_merge_into_histograms;
          Alcotest.test_case "merge_into: deterministic shard fold" `Quick
            test_merge_into_histograms_deterministic;
          Alcotest.test_case "merge_into: rejects mismatches" `Quick
            test_merge_into_rejects_mismatch;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick
            test_span_nesting_and_ordering;
          Alcotest.test_case "recorded on exception" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "chrome export" `Quick test_tracer_chrome_export;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "noop is disabled" `Quick test_noop_is_disabled;
          Alcotest.test_case "legacy trace shim" `Quick test_legacy_trace_shim;
        ] );
      ( "golden",
        [
          Alcotest.test_case "runtime trace + metrics" `Quick
            test_runtime_golden;
          Alcotest.test_case "noop leaves results unchanged" `Quick
            test_runtime_noop_unchanged;
        ] );
    ]
