(* Differential determinism suite for Acq_par.

   The claim under test: parallelism changes wall time, never results.
   Every planner run through the domain pool, every portfolio race
   (four arms: Exhaustive, Heuristic, CorrSeq, and the sampling-based
   Pac arm), and every workload fan-out must be structurally identical
   — plan tree, estimated cost, plan size, byte-for-byte canonical
   report — to its sequential counterpart. Plus cancellation and
   robustness: arms that blow their budget or deadline (including the
   sampled Pac arm, whose refinement loop ticks the same search
   context) lose the race without leaking tasks, task exceptions don't
   kill workers, and shutdown never hangs (a watchdog alarm turns a
   hang into a loud failure).

   Worker count comes from ACQP_TEST_DOMAINS (default 4); CI pins 4. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module P = Acq_core.Planner
module Dp = Acq_par.Domain_pool
module Pf = Acq_par.Portfolio
module Pe = Acq_par.Parallel_experiment

let test_domains () =
  match Sys.getenv_opt "ACQP_TEST_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

(* Turn a hung pool into a failing test instead of a stuck CI job. *)
let with_alarm seconds f =
  let old =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle
         (fun _ ->
           prerr_endline "test_par: watchdog alarm fired — pool hung";
           exit 124))
  in
  let finally () =
    ignore (Unix.alarm 0 : int);
    Sys.set_signal Sys.sigalrm old
  in
  Fun.protect ~finally (fun () ->
      ignore (Unix.alarm seconds : int);
      f ())

(* ------------------------------------------------------------------ *)
(* Seeded random planning instances, the test_props recipe: correlated
   columns driven by a latent regime, a random conjunctive query. *)

let cost_choices = [| 1.0; 5.0; 20.0; 100.0 |]

let random_preds rng ~domains ~n_preds =
  let n_attrs = Array.length domains in
  let attrs = Rng.sample_without_replacement rng n_preds n_attrs in
  Array.to_list
    (Array.map
       (fun attr ->
         let k = domains.(attr) in
         let lo = Rng.int rng k in
         let hi = lo + Rng.int rng (k - lo) in
         if Rng.bernoulli rng 0.25 && not (lo = 0 && hi = k - 1) then
           Pred.outside ~attr ~lo ~hi
         else Pred.inside ~attr ~lo ~hi)
       attrs)

let make_instance seed =
  let rng = Rng.create seed in
  let n_attrs = 3 + Rng.int rng 3 in
  let domains = Array.init n_attrs (fun _ -> 2 + Rng.int rng 5) in
  let costs = Array.init n_attrs (fun _ -> cost_choices.(Rng.int rng 4)) in
  let schema =
    S.create
      (List.init n_attrs (fun k ->
           A.discrete
             ~name:(Printf.sprintf "a%d" k)
             ~cost:costs.(k) ~domain:domains.(k)))
  in
  let rows =
    Array.init 400 (fun _ ->
        let regime = Rng.float rng 1.0 in
        Array.init n_attrs (fun k ->
            if Rng.bernoulli rng 0.75 then
              min (domains.(k) - 1)
                (int_of_float (regime *. float_of_int domains.(k)))
            else Rng.int rng domains.(k)))
  in
  let ds = DS.create schema rows in
  let n_preds = 1 + Rng.int rng (min 3 n_attrs) in
  (ds, Q.create schema (random_preds rng ~domains ~n_preds))

let options = { P.default_options with split_points_per_attr = 3 }
let algos = [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ]

let plan_size (r : P.result) = r.P.stats.Acq_core.Search.plan_size

(* ------------------------------------------------------------------ *)
(* Differential: pool vs sequential, every planner, 50 seeds. *)

let test_planner_differential () =
  Dp.with_pool ~domains:(test_domains ()) @@ fun pool ->
  for seed = 0 to 49 do
    let ds, q = make_instance seed in
    List.iter
      (fun algo ->
        let here = Printf.sprintf "%s/seed%d" (P.algorithm_name algo) seed in
        let seq = P.plan ~options algo q ~train:ds in
        let par = Dp.run pool (fun _tele -> P.plan ~options algo q ~train:ds) in
        Alcotest.(check bool)
          (here ^ " plan tree") true
          (Plan.equal seq.P.plan par.P.plan);
        Alcotest.(check (float 0.0))
          (here ^ " est cost") seq.P.est_cost par.P.est_cost;
        Alcotest.(check int)
          (here ^ " plan size") (plan_size seq) (plan_size par))
      algos
  done

(* Tier-parallel Exhaustive: fanning the root DP tier across the pool
   (one branch attribute per forked search context, deterministic
   memo/counter merge) returns the bit-identical plan and cost, and
   two independent fanned runs agree with each other — including on
   the merged effort counters, which may exceed the sequential ones
   (parallel branches forgo cross-branch bound tightening) but must be
   the same number every run. *)
let test_exhaustive_tier_fanout () =
  Dp.with_pool ~domains:(test_domains ()) @@ fun pool ->
  let fanout = Dp.fanout pool in
  for seed = 0 to 49 do
    let ds, q = make_instance seed in
    let here = Printf.sprintf "seed%d" seed in
    let seq = P.plan ~options P.Exhaustive q ~train:ds in
    let par = P.plan ~options ~fanout P.Exhaustive q ~train:ds in
    let par' = P.plan ~options ~fanout P.Exhaustive q ~train:ds in
    Alcotest.(check bool)
      (here ^ " plan tree") true
      (Plan.equal seq.P.plan par.P.plan);
    Alcotest.(check (float 0.0)) (here ^ " est cost") seq.P.est_cost par.P.est_cost;
    Alcotest.(check int) (here ^ " plan size") (plan_size seq) (plan_size par);
    Alcotest.(check bool)
      (here ^ " rerun plan tree") true
      (Plan.equal par.P.plan par'.P.plan);
    Alcotest.(check int)
      (here ^ " counters deterministic across fanned runs")
      par.P.stats.Acq_core.Search.nodes_solved
      par'.P.stats.Acq_core.Search.nodes_solved
  done

(* Over a memoized backend the fanout must be refused (the memo
   combinator's shared cache mutates on read), silently falling back
   to the sequential sweep. *)
let test_exhaustive_fanout_memo_guard () =
  Dp.with_pool ~domains:(test_domains ()) @@ fun pool ->
  let fanout = Dp.fanout pool in
  let memo_opts =
    {
      options with
      P.prob_model =
        { Acq_prob.Backend.default_spec with Acq_prob.Backend.memoize = true };
    }
  in
  for seed = 0 to 9 do
    let ds, q = make_instance seed in
    let here = Printf.sprintf "memo/seed%d" seed in
    let seq = P.plan ~options:memo_opts P.Exhaustive q ~train:ds in
    let par = P.plan ~options:memo_opts ~fanout P.Exhaustive q ~train:ds in
    Alcotest.(check bool)
      (here ^ " plan tree") true
      (Plan.equal seq.P.plan par.P.plan);
    Alcotest.(check (float 0.0)) (here ^ " est cost") seq.P.est_cost par.P.est_cost
  done

(* Portfolio: racing in parallel picks exactly the plan a sequential
   sweep would — cheapest est cost, ties to the earlier arm. *)
let test_portfolio_matches_sequential () =
  Dp.with_pool ~domains:(test_domains ()) @@ fun pool ->
  for seed = 50 to 99 do
    let ds, q = make_instance seed in
    let here = Printf.sprintf "seed%d" seed in
    let expected =
      List.fold_left
        (fun best algo ->
          let r = P.plan ~options algo q ~train:ds in
          match best with
          | Some (_, (b : P.result)) when b.P.est_cost <= r.P.est_cost -> best
          | _ -> Some (algo, r))
        None Pf.default_algorithms
    in
    let raced = Pf.race ~options ~pool q ~train:ds in
    match (expected, raced.Pf.winner) with
    | Some (ea, er), Some (ra, rr) ->
        Alcotest.(check string)
          (here ^ " winner")
          (P.algorithm_name ea) (P.algorithm_name ra);
        Alcotest.(check (float 0.0)) (here ^ " est") er.P.est_cost rr.P.est_cost;
        Alcotest.(check bool)
          (here ^ " plan") true
          (Plan.equal er.P.plan rr.P.plan)
    | _ -> Alcotest.fail (here ^ ": a finished winner was expected")
  done

(* ------------------------------------------------------------------ *)
(* Workload fan-out: pool sizes 1, 2, and N give the same canonical
   report as the sequential path, and two independent N-domain runs
   are byte-identical. *)

let fanout_fixture () =
  let ds, _ = make_instance 1000 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let domains = S.domains schema in
  let gen_query rng =
    let n_preds = 1 + Rng.int rng (min 3 (S.arity schema)) in
    Q.create schema (random_preds rng ~domains ~n_preds)
  in
  let specs =
    [
      {
        Pe.name = "heuristic";
        build = (fun q -> P.plan ~options P.Heuristic q ~train);
      };
      {
        Pe.name = "corrseq";
        build = (fun q -> P.plan ~options P.Corr_seq q ~train);
      };
    ]
  in
  let fan ?pool () =
    Pe.run ?pool ~seed:7 ~specs ~gen_query ~n_queries:12 ~train ~test ()
  in
  fan

let test_parallel_experiment_determinism () =
  let fan = fanout_fixture () in
  let canon (o : Pe.outcome) = Pe.report_to_string o.Pe.report in
  let seq = canon (fan ()) in
  List.iter
    (fun domains ->
      let par = Dp.with_pool ~domains (fun pool -> canon (fan ~pool ())) in
      Alcotest.(check string)
        (Printf.sprintf "%d-domain run = sequential" domains)
        seq par)
    [ 1; 2; test_domains () ];
  let n = test_domains () in
  let once () = Dp.with_pool ~domains:n (fun pool -> canon (fan ~pool ())) in
  Alcotest.(check string) "two pool runs byte-identical" (once ()) (once ())

(* Experiment.run ?pool (the workload harness) agrees with its own
   sequential path on every per-query number. *)
let test_experiment_pool_matches_sequential () =
  let ds, _ = make_instance 1001 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let domains = S.domains schema in
  let rng = Rng.create 11 in
  let queries =
    List.init 10 (fun _ ->
        let n_preds = 1 + Rng.int rng (min 3 (S.arity schema)) in
        Q.create schema (random_preds rng ~domains ~n_preds))
  in
  let module E = Acq_workload.Experiment in
  let specs =
    [
      {
        E.name = "heuristic";
        build = (fun q -> P.plan ~options P.Heuristic q ~train);
      };
      {
        E.name = "exhaustive";
        build = (fun q -> P.plan ~options P.Exhaustive q ~train);
      };
    ]
  in
  let run ?pool () = E.run ?pool ~specs ~queries ~train ~test () in
  let seq = run () in
  let par =
    Dp.with_pool ~domains:(test_domains ()) (fun pool -> run ~pool ())
  in
  List.iteri
    (fun i ((s : E.query_run), (p : E.query_run)) ->
      let here = Printf.sprintf "query %d" i in
      Alcotest.(check bool) (here ^ " est") true (s.E.est_costs = p.E.est_costs);
      Alcotest.(check bool)
        (here ^ " test costs") true
        (s.E.test_costs = p.E.test_costs);
      Alcotest.(check bool)
        (here ^ " train costs") true
        (s.E.train_costs = p.E.train_costs);
      Alcotest.(check bool)
        (here ^ " plan tests") true
        (s.E.plan_tests = p.E.plan_tests);
      Alcotest.(check bool) (here ^ " consistent") s.E.consistent p.E.consistent)
    (List.combine seq par)

(* ------------------------------------------------------------------ *)
(* Cancellation: losing arms lose gracefully. *)

let test_portfolio_budget_arm () =
  with_alarm 5 @@ fun () ->
  let ds, q = make_instance 200 in
  let opts = { options with exhaustive_budget = 0 } in
  Dp.with_pool ~domains:3 @@ fun pool ->
  let o = Pf.race ~options:opts ~pool q ~train:ds in
  let ex_arm =
    List.find (fun (a : Pf.arm) -> a.Pf.algorithm = P.Exhaustive) o.Pf.arms
  in
  Alcotest.(check string)
    "exhaustive arm lost on budget" "budget"
    (Pf.status_name ex_arm.Pf.status);
  (match o.Pf.winner with
  | Some (a, _) ->
      Alcotest.(check bool)
        "winner is a surviving arm" true
        (a <> P.Exhaustive)
  | None -> Alcotest.fail "surviving arms should still produce a winner");
  let s = Dp.stats pool in
  Alcotest.(check int) "no leaked tasks" s.Dp.submitted s.Dp.completed

(* The sampled Pac arm's refinement loop re-scores every candidate per
   round, so it spends strictly more search ticks than a single
   sequential sweep. A budget calibrated to CorrSeq's exact effort
   starves Pac alone: it must lose with status "budget" while CorrSeq
   wins, and the pool must drain every task. *)
let test_portfolio_sampled_arm_starved () =
  with_alarm 5 @@ fun () ->
  let ds, q = make_instance 202 in
  let corr = P.plan ~options P.Corr_seq q ~train:ds in
  let pac = P.plan ~options P.Pac q ~train:ds in
  let corr_nodes = corr.P.stats.Acq_core.Search.nodes_solved in
  let pac_nodes = pac.P.stats.Acq_core.Search.nodes_solved in
  Alcotest.(check bool)
    (Printf.sprintf "pac outspends corrseq (%d > %d)" pac_nodes corr_nodes)
    true (pac_nodes > corr_nodes);
  let opts = { options with search_budget = Some corr_nodes } in
  Dp.with_pool ~domains:2 @@ fun pool ->
  let o =
    Pf.race ~options:opts ~algorithms:[ P.Corr_seq; P.Pac ] ~pool q ~train:ds
  in
  let arm a = List.find (fun (x : Pf.arm) -> x.Pf.algorithm = a) o.Pf.arms in
  Alcotest.(check string)
    "pac arm lost on budget" "budget"
    (Pf.status_name (arm P.Pac).Pf.status);
  Alcotest.(check string)
    "corrseq arm finished" "finished"
    (Pf.status_name (arm P.Corr_seq).Pf.status);
  (match o.Pf.winner with
  | Some (a, r) ->
      Alcotest.(check string)
        "corrseq wins" "CorrSeq" (P.algorithm_name a);
      Alcotest.(check (float 0.0)) "winning cost" corr.P.est_cost r.P.est_cost
  | None -> Alcotest.fail "the surviving arm should win");
  let s = Dp.stats pool in
  Alcotest.(check int) "no leaked tasks" s.Dp.submitted s.Dp.completed

let test_portfolio_deadline_all_arms () =
  with_alarm 5 @@ fun () ->
  let ds, q = make_instance 201 in
  let opts = { options with deadline_ms = Some 0.0 } in
  Dp.with_pool ~domains:3 @@ fun pool ->
  let o = Pf.race ~options:opts ~pool q ~train:ds in
  List.iter
    (fun (a : Pf.arm) ->
      Alcotest.(check string)
        (P.algorithm_name a.Pf.algorithm ^ " deadline")
        "deadline"
        (Pf.status_name a.Pf.status))
    o.Pf.arms;
  Alcotest.(check bool) "no winner" true (o.Pf.winner = None);
  let s = Dp.stats pool in
  Alcotest.(check int) "no leaked tasks" s.Dp.submitted s.Dp.completed

(* ------------------------------------------------------------------ *)
(* Robustness: exceptions are contained, shutdown is clean and
   idempotent, nothing hangs. *)

let test_pool_task_exception () =
  with_alarm 5 @@ fun () ->
  let pool = Dp.create ~domains:(test_domains ()) () in
  let bad = Dp.submit pool (fun _ -> failwith "boom") in
  (match Dp.await pool bad with
  | Error (Failure msg) -> Alcotest.(check string) "message" "boom" msg
  | Error e -> Alcotest.failf "unexpected exception: %s" (Printexc.to_string e)
  | Ok _ -> Alcotest.fail "expected the task's exception");
  (* The worker that ran the raising task is still alive. *)
  let ok = Dp.submit pool (fun _ -> 21 * 2) in
  Alcotest.(check int) "pool alive after exception" 42 (Dp.await_exn pool ok);
  Dp.shutdown pool;
  let s = Dp.stats pool in
  Alcotest.(check int) "submitted" 2 s.Dp.submitted;
  Alcotest.(check int) "completed" 2 s.Dp.completed;
  (* Idempotent: a second shutdown is a no-op, not a deadlock. *)
  Dp.shutdown pool

let test_pool_shutdown_with_pending_work () =
  with_alarm 5 @@ fun () ->
  let pool = Dp.create ~domains:2 () in
  let futs =
    List.init 16 (fun i ->
        Dp.submit pool (fun _ ->
            if i mod 5 = 4 then failwith "sporadic" else i))
  in
  (* Shut down without awaiting: the pool must drain every task. *)
  Dp.shutdown pool;
  let s = Dp.stats pool in
  Alcotest.(check int) "all tasks drained" 16 s.Dp.completed;
  (* Futures settled during the drain are still collectable. *)
  List.iteri
    (fun i f ->
      match Dp.await pool f with
      | Ok v -> Alcotest.(check int) "value" i v
      | Error (Failure msg) ->
          Alcotest.(check string) "message" "sporadic" msg;
          Alcotest.(check int) "raising index" 4 (i mod 5)
      | Error e -> Alcotest.failf "unexpected: %s" (Printexc.to_string e))
    futs

(* ------------------------------------------------------------------ *)
(* Telemetry shards: worker-side counters surface in the creating
   registry after shutdown, planner counters included. *)

let test_shard_merge () =
  with_alarm 10 @@ fun () ->
  let m = Acq_obs.Metrics.create () in
  let obs = Acq_obs.Telemetry.create ~metrics:m () in
  let ds, q = make_instance 300 in
  Dp.with_pool ~telemetry:obs ~domains:(test_domains ()) (fun pool ->
      List.init 8 (fun _ ->
          Dp.submit pool (fun tele ->
              ignore
                (P.plan ~options ~telemetry:tele P.Heuristic q ~train:ds
                  : P.result)))
      |> List.iter (fun f -> ignore (Dp.await_exn pool f)));
  let snap = Acq_obs.Metrics.snapshot m in
  let total name =
    List.fold_left
      (fun acc (k, v) ->
        if
          String.length k >= String.length name
          && String.sub k 0 (String.length name) = name
        then acc +. v
        else acc)
      0.0 snap
  in
  Alcotest.(check (float 0.0)) "tasks counted" 8.0 (total "acqp_par_tasks_total");
  Alcotest.(check (float 0.0))
    "planner shards merged" 8.0
    (total "acqp_planner_plans_total");
  Alcotest.(check bool)
    "per-task histogram present" true
    (total "acqp_par_task_ms" > 0.0)

(* ------------------------------------------------------------------ *)
(* RNG stream splitting: streams depend on (seed, index) only. *)

let test_split_n_deterministic () =
  let draw g = List.init 5 (fun _ -> Rng.int g 1_000_000) in
  let a = Rng.split_n (Rng.create 99) 6 in
  let b = Rng.split_n (Rng.create 99) 6 in
  Alcotest.(check int) "length" 6 (Array.length a);
  (* Same streams from the same seed... *)
  let fwd = Array.map draw a in
  (* ...even when consumed in the opposite order. *)
  for i = 5 downto 0 do
    Alcotest.(check (list int))
      (Printf.sprintf "stream %d order-independent" i)
      fwd.(i) (draw b.(i))
  done;
  (* Distinct streams actually differ. *)
  Alcotest.(check bool) "streams differ" true (fwd.(0) <> fwd.(1));
  Alcotest.(check int) "n=0 fine" 0 (Array.length (Rng.split_n (Rng.create 1) 0))

let () =
  Alcotest.run "par"
    [
      ( "differential",
        [
          Alcotest.test_case "every planner, pool = sequential, 50 seeds"
            `Quick test_planner_differential;
          Alcotest.test_case "exhaustive tier fanout = sequential, 50 seeds"
            `Quick test_exhaustive_tier_fanout;
          Alcotest.test_case "fanout refused over memoized backend" `Quick
            test_exhaustive_fanout_memo_guard;
          Alcotest.test_case "portfolio = sequential argmin, 50 seeds" `Quick
            test_portfolio_matches_sequential;
          Alcotest.test_case "fan-out reports byte-identical" `Quick
            test_parallel_experiment_determinism;
          Alcotest.test_case "Experiment.run pool = sequential" `Quick
            test_experiment_pool_matches_sequential;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "budget-starved arm loses cleanly" `Quick
            test_portfolio_budget_arm;
          Alcotest.test_case "starved sampled arm loses cleanly" `Quick
            test_portfolio_sampled_arm_starved;
          Alcotest.test_case "expired deadline fails every arm" `Quick
            test_portfolio_deadline_all_arms;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "task exception contained" `Quick
            test_pool_task_exception;
          Alcotest.test_case "shutdown drains pending work" `Quick
            test_pool_shutdown_with_pending_work;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "worker shards merge" `Quick test_shard_merge ] );
      ( "rng",
        [
          Alcotest.test_case "split_n deterministic" `Quick
            test_split_n_deterministic;
        ] );
    ]
