(* Integration tests: whole-pipeline scenarios crossing every library
   boundary — SQL text to plan to simulated network execution, dataset
   persistence and replanning, model-driven planning, and miniature
   versions of the paper's experiments. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module Ex = Acq_plan.Executor
module E = Acq_prob.Estimator
module P = Acq_core.Planner
module RT = Acq_sensor.Runtime

let check_float6 = Alcotest.(check (float 1e-6))

(* SQL text -> catalog -> heuristic plan -> network replay, verdicts
   audited against ground truth. *)
let test_sql_to_network () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 100) ~rows:6_000 in
  let history, live = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let { Acq_sql.Catalog.query = q; select } =
    Acq_sql.Catalog.compile schema
      "SELECT nodeid, light WHERE light >= 300 AND temp <= 20 AND \
       humidity <= 45"
  in
  Alcotest.(check (list int)) "projection resolved"
    [ Acq_data.Lab_gen.idx_nodeid; Acq_data.Lab_gen.idx_light ]
    select;
  let report = RT.run ~algorithm:P.Heuristic ~history ~live q in
  Alcotest.(check bool) "network verdicts correct" true report.RT.correct;
  Alcotest.(check bool) "plan fits a mote (under 1KB)" true
    ((RT.plan_bytes report) < 1024)

(* Plans survive a disseminate-style encode/decode and execute
   identically. *)
let test_plan_ships_faithfully () =
  let ds = Acq_data.Garden_gen.generate (Rng.create 101) ~n_motes:3 ~rows:4_000 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let q =
    Acq_workload.Query_gen.garden_query (Rng.create 102) ~schema ~n_motes:3
  in
  let costs = S.costs schema in
  let plan =
    (P.plan
       ~options:{ P.default_options with split_points_per_attr = 4 }
       P.Heuristic q ~train)
      .P.plan
  in
  let shipped = Acq_plan.Serialize.decode (Acq_plan.Serialize.encode plan) in
  check_float6 "identical cost after shipping"
    (Ex.average_cost q ~costs plan test)
    (Ex.average_cost q ~costs shipped test);
  Alcotest.(check bool) "identical structure" true (Plan.equal plan shipped)

(* Save a dataset to CSV, reload it, and verify planning reproduces
   the identical plan. *)
let test_persistence_replan () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 103) ~rows:3_000 in
  let schema = DS.schema ds in
  let path = Filename.temp_file "acq_integration" ".csv" in
  Acq_data.Csv_io.save path ds;
  let reloaded = Acq_data.Csv_io.load schema path in
  Sys.remove path;
  let q = Acq_workload.Query_gen.lab_query (Rng.create 104) ~train:ds in
  let r1 = P.plan P.Heuristic q ~train:ds in
  let r2 = P.plan P.Heuristic q ~train:reloaded in
  Alcotest.(check bool) "identical plan from reloaded data" true
    (Plan.equal r1.P.plan r2.P.plan);
  check_float6 "identical cost" r1.P.est_cost r2.P.est_cost

(* A Chow-Liu-driven plan is still correct and competitive. *)
let test_model_driven_planning () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 105) ~rows:8_000 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let q = Acq_workload.Query_gen.lab_query (Rng.create 106) ~train in
  let costs = S.costs schema in
  let model = Acq_prob.Chow_liu.learn train in
  let est =
    E.of_chow_liu model ~weight:(float_of_int (DS.nrows train))
  in
  let plan = (P.plan_with_estimator P.Heuristic q ~costs est).P.plan in
  Alcotest.(check bool) "model-driven plan consistent" true
    (Ex.consistent q ~costs plan test);
  let naive = (P.plan P.Naive q ~train).P.plan in
  let c_model = Ex.average_cost q ~costs plan test in
  let c_naive = Ex.average_cost q ~costs naive test in
  Alcotest.(check bool) "not catastrophically worse than naive" true
    (c_model <= c_naive *. 1.5)

(* The headline result in miniature: on correlated garden data the
   conditional plan beats Naive on held-out data by a clear margin,
   averaged over a small workload. *)
let test_headline_gain () =
  let n_motes = 5 in
  let ds = Acq_data.Garden_gen.generate (Rng.create 107) ~n_motes ~rows:8_000 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let schema = DS.schema ds in
  let qrng = Rng.create 108 in
  let cheap = S.cheap_indices schema in
  let o =
    {
      P.default_options with
      split_points_per_attr = 4;
      max_splits = 10;
      candidate_attrs = Some cheap;
    }
  in
  let total_naive = ref 0.0 and total_heur = ref 0.0 in
  for _ = 1 to 8 do
    let q = Acq_workload.Query_gen.garden_query qrng ~schema ~n_motes in
    let costs = S.costs schema in
    let naive = (P.plan P.Naive q ~train).P.plan in
    let heur = (P.plan ~options:o P.Heuristic q ~train).P.plan in
    Alcotest.(check bool) "heuristic consistent on test" true
      (Ex.consistent q ~costs heur test);
    total_naive := !total_naive +. Ex.average_cost q ~costs naive test;
    total_heur := !total_heur +. Ex.average_cost q ~costs heur test
  done;
  Alcotest.(check bool)
    (Printf.sprintf "conditional plans beat naive by >15%% (%.1f vs %.1f)"
       !total_naive !total_heur)
    true
    (!total_naive > !total_heur *. 1.15)

(* Streams-style replanning (Section 7): after a regime change,
   refreshing the basestation history recovers the gains. *)
let test_adaptive_replanning () =
  let schema =
    S.create
      [
        Acq_data.Attribute.discrete ~name:"regime" ~cost:1.0 ~domain:2;
        Acq_data.Attribute.discrete ~name:"e1" ~cost:100.0 ~domain:2;
        Acq_data.Attribute.discrete ~name:"e2" ~cost:100.0 ~domain:2;
      ]
  in
  let gen seed flip rows =
    let rng = Rng.create seed in
    DS.create schema
      (Array.init rows (fun _ ->
           let r = Rng.int rng 2 in
           let e1 = if Rng.bernoulli rng 0.9 then r else 1 - r in
           let e2 = if Rng.bernoulli rng 0.9 then 1 - r else r in
           if flip then [| r; e2; e1 |] else [| r; e1; e2 |]))
  in
  let old_world = gen 109 false 4_000 in
  let new_world = gen 110 true 4_000 in
  let q =
    Q.create schema
      [
        Acq_plan.Predicate.inside ~attr:1 ~lo:1 ~hi:1;
        Acq_plan.Predicate.inside ~attr:2 ~lo:1 ~hi:1;
      ]
  in
  let costs = S.costs schema in
  let opts = { P.default_options with max_splits = 3 } in
  let stale = (P.plan ~options:opts P.Heuristic q ~train:old_world).P.plan in
  let fresh = (P.plan ~options:opts P.Heuristic q ~train:new_world).P.plan in
  let c_stale = Ex.average_cost q ~costs stale new_world in
  let c_fresh = Ex.average_cost q ~costs fresh new_world in
  (* Both remain CORRECT... *)
  Alcotest.(check bool) "stale plan still correct" true
    (Ex.consistent q ~costs stale new_world);
  (* ...but replanning on fresh statistics is cheaper. *)
  Alcotest.(check bool) "replanning recovers the gain" true
    (c_fresh < c_stale -. 1.0)

(* Energy conservation across the whole simulated network: mote-level
   meters add up to the runtime report. *)
let test_energy_conservation () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 111) ~rows:3_000 in
  let history, live = DS.split_by_time ds ~train_fraction:0.5 in
  let q = Acq_workload.Query_gen.lab_query (Rng.create 112) ~train:history in
  let r = RT.run ~algorithm:P.Corr_seq ~history ~live q in
  check_float6 "total = acquisition + radio" r.RT.total_energy
    (r.RT.acquisition_energy +. r.RT.radio_energy);
  (* The executor's average over the live trace predicts the per-epoch
     acquisition energy exactly. *)
  let costs = S.costs (Q.schema q) in
  check_float6 "runtime = executor"
    (Ex.average_cost q ~costs r.RT.plan live)
    r.RT.avg_cost_per_epoch

(* The CLI-visible seeds reproduce: planning twice from identical
   generator parameters yields identical plans. *)
let test_reproducibility_end_to_end () =
  let mk () =
    let ds = Acq_data.Garden_gen.generate (Rng.create 113) ~n_motes:4 ~rows:3_000 in
    let schema = DS.schema ds in
    let q = Acq_workload.Query_gen.garden_query (Rng.create 114) ~schema ~n_motes:4 in
    P.plan ~options:{ P.default_options with split_points_per_attr = 4 }
      P.Heuristic q ~train:ds
  in
  let r1 = mk () in
  let r2 = mk () in
  Alcotest.(check bool) "identical plans" true (Plan.equal r1.P.plan r2.P.plan);
  check_float6 "identical costs" r1.P.est_cost r2.P.est_cost;
  (* Fresh search contexts per call: the effort counters agree too,
     proving nothing (memo entries, counters) leaked across calls. *)
  let s1 : Acq_core.Search.stats = r1.P.stats
  and s2 : Acq_core.Search.stats = r2.P.stats in
  Alcotest.(check int) "same nodes solved" s1.Acq_core.Search.nodes_solved
    s2.Acq_core.Search.nodes_solved;
  Alcotest.(check int) "same memo hits" s1.Acq_core.Search.memo_hits
    s2.Acq_core.Search.memo_hits;
  Alcotest.(check int) "same estimator calls"
    s1.Acq_core.Search.estimator_calls s2.Acq_core.Search.estimator_calls

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "sql to network" `Quick test_sql_to_network;
          Alcotest.test_case "plan ships faithfully" `Quick
            test_plan_ships_faithfully;
          Alcotest.test_case "persistence replan" `Quick test_persistence_replan;
          Alcotest.test_case "model-driven planning" `Quick
            test_model_driven_planning;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "headline gain" `Quick test_headline_gain;
          Alcotest.test_case "adaptive replanning" `Quick
            test_adaptive_replanning;
          Alcotest.test_case "energy conservation" `Quick
            test_energy_conservation;
          Alcotest.test_case "reproducibility" `Quick
            test_reproducibility_end_to_end;
        ] );
    ]
