(* Unit tests for Acq_prob.Sliding: incremental window statistics and
   drift detection for the streams extension. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Sl = Acq_prob.Sliding

let check_float = Alcotest.(check (float 1e-9))

let schema () =
  S.create
    [
      A.discrete ~name:"x" ~cost:1.0 ~domain:4;
      A.discrete ~name:"y" ~cost:10.0 ~domain:3;
    ]

let test_fill_and_size () =
  let w = Sl.create (schema ()) ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Sl.size w);
  Sl.push w [| 0; 0 |];
  Sl.push w [| 1; 1 |];
  Alcotest.(check int) "partial" 2 (Sl.size w);
  Alcotest.(check bool) "not full" false (Sl.is_full w);
  Sl.push w [| 2; 2 |];
  Alcotest.(check bool) "full" true (Sl.is_full w);
  Sl.push w [| 3; 0 |];
  Alcotest.(check int) "stays at capacity" 3 (Sl.size w)

let test_eviction_order () =
  let w = Sl.create (schema ()) ~capacity:3 in
  List.iter (Sl.push w) [ [| 0; 0 |]; [| 1; 1 |]; [| 2; 2 |]; [| 3; 0 |] ];
  let ds = Sl.to_dataset w in
  (* Oldest row [0;0] evicted; remaining in arrival order. *)
  Alcotest.(check (array int)) "oldest" [| 1; 1 |] (DS.row ds 0);
  Alcotest.(check (array int)) "newest" [| 3; 0 |] (DS.row ds 2)

let test_incremental_histogram () =
  let w = Sl.create (schema ()) ~capacity:3 in
  List.iter (Sl.push w) [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ];
  (* Window now holds [0;1], [1;2], [2;0]. *)
  Alcotest.(check (array int)) "x histogram" [| 1; 1; 1; 0 |] (Sl.histogram w 0);
  Alcotest.(check (array int)) "y histogram" [| 1; 1; 1 |] (Sl.histogram w 1)

let test_histogram_matches_dataset () =
  let rng = Rng.create 1 in
  let w = Sl.create (schema ()) ~capacity:50 in
  for _ = 1 to 200 do
    Sl.push w [| Rng.int rng 4; Rng.int rng 3 |]
  done;
  let ds = Sl.to_dataset w in
  let direct = Acq_prob.View.histogram (Acq_prob.View.of_dataset ds) ~attr:0 in
  Alcotest.(check (array int)) "incremental = recomputed" direct
    (Sl.histogram w 0)

let test_push_validation () =
  let w = Sl.create (schema ()) ~capacity:2 in
  (try
     Sl.push w [| 0 |];
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ());
  (try
     Sl.push w [| 9; 0 |];
     Alcotest.fail "expected domain failure"
   with Invalid_argument _ -> ())

let test_estimator_over_window () =
  let w = Sl.create (schema ()) ~capacity:4 in
  List.iter (Sl.push w) [ [| 0; 0 |]; [| 0; 0 |]; [| 1; 2 |]; [| 1; 2 |] ];
  let est = Sl.estimator w in
  check_float "P(x=0) over window" 0.5
    (est.Acq_prob.Estimator.range_prob 0 (Acq_plan.Range.make 0 0))

let test_backend_over_window () =
  (* Sl.backend honors the spec and every model agrees with the
     window's estimator on an unconditioned range. *)
  let w = Sl.create (schema ()) ~capacity:4 in
  List.iter (Sl.push w) [ [| 0; 0 |]; [| 0; 0 |]; [| 1; 2 |]; [| 1; 2 |] ];
  let r = Acq_plan.Range.make 0 0 in
  List.iter
    (fun spec_s ->
      let spec =
        match Acq_prob.Backend.spec_of_string spec_s with
        | Ok sp -> sp
        | Error e -> Alcotest.fail (Acq_prob.Backend.spec_error_to_string e)
      in
      let b = Sl.backend ~spec w in
      check_float
        (Printf.sprintf "P(x=0) under %s" spec_s)
        0.5
        (Acq_prob.Backend.range_prob b 0 r))
    (* sampled(4,·) over a 4-row window covers it entirely, so the
       estimate is exactly the empirical one. *)
    [ "empirical"; "empirical,memo"; "dense"; "independence";
      "sampled(4,0.1)"; "sampled(4,0.1),memo" ]

let test_marginals_match_histograms () =
  let rng = Rng.create 6 in
  let w = Sl.create (schema ()) ~capacity:32 in
  for _ = 1 to 100 do
    Sl.push w [| Rng.int rng 4; Rng.int rng 3 |]
  done;
  let m = Sl.marginals w in
  Alcotest.(check (array int)) "x marginal" (Sl.histogram w 0) m.(0);
  Alcotest.(check (array int)) "y marginal" (Sl.histogram w 1) m.(1);
  let m' = Sl.marginals_of (Sl.to_dataset w) in
  Alcotest.(check (array int)) "dataset pass agrees, x" m.(0) m'.(0);
  Alcotest.(check (array int)) "dataset pass agrees, y" m.(1) m'.(1)

let test_drift_detects_change () =
  let s = schema () in
  let mk v rows = DS.create s (Array.make rows [| v; v mod 3 |]) in
  let reference = mk 0 100 in
  let w = Sl.create s ~capacity:50 in
  Sl.push_dataset w (mk 0 50);
  check_float "no drift on same distribution" 0.0 (Sl.drift w ~reference);
  let w2 = Sl.create s ~capacity:50 in
  Sl.push_dataset w2 (mk 3 50);
  (* x fully shifted (TV = 1), y unchanged (TV = 0): mean 0.5. *)
  check_float "drift is mean TV over attributes" 0.5 (Sl.drift w2 ~reference)

let test_drift_partial () =
  let s = schema () in
  let rng = Rng.create 2 in
  let reference =
    DS.create s (Array.init 1000 (fun _ -> [| Rng.int rng 4; Rng.int rng 3 |]))
  in
  let w = Sl.create s ~capacity:500 in
  for _ = 1 to 500 do
    Sl.push w [| Rng.int rng 4; Rng.int rng 3 |]
  done;
  let d = Sl.drift w ~reference in
  Alcotest.(check bool) "same-distribution drift small" true (d < 0.1)

let test_clear () =
  let w = Sl.create (schema ()) ~capacity:3 in
  List.iter (Sl.push w) [ [| 0; 0 |]; [| 1; 1 |]; [| 2; 2 |] ];
  Alcotest.(check bool) "full before clear" true (Sl.is_full w);
  Sl.clear w;
  Alcotest.(check int) "empty after clear" 0 (Sl.size w);
  Alcotest.(check (array int)) "histogram zeroed" [| 0; 0; 0; 0 |]
    (Sl.histogram w 0);
  (* The window is usable again after clear. *)
  Sl.push w [| 3; 0 |];
  Alcotest.(check int) "refills" 1 (Sl.size w);
  Alcotest.(check (array int)) "histogram restarts" [| 0; 0; 0; 1 |]
    (Sl.histogram w 0)

let test_drift_empty_window () =
  let s = schema () in
  let reference = DS.create s (Array.make 50 [| 0; 0 |]) in
  let w = Sl.create s ~capacity:10 in
  (* No evidence yet: drift is defined as 0, never an exception. *)
  check_float "empty window" 0.0 (Sl.drift w ~reference);
  Sl.push w [| 3; 2 |];
  Alcotest.(check bool) "one row is evidence" true
    (Sl.drift w ~reference > 0.0);
  Sl.clear w;
  check_float "cleared window" 0.0 (Sl.drift w ~reference)

let test_drift_marginals_equivalence () =
  (* drift and drift_marginals compute the same score; the latter
     against a precomputed snapshot instead of a dataset scan. *)
  let s = schema () in
  let rng = Rng.create 7 in
  let reference =
    DS.create s (Array.init 300 (fun _ -> [| Rng.int rng 4; Rng.int rng 3 |]))
  in
  let w = Sl.create s ~capacity:100 in
  for _ = 1 to 150 do
    Sl.push w [| Rng.int rng 4; Rng.int rng 3 |]
  done;
  check_float "same score"
    (Sl.drift w ~reference)
    (Sl.drift_marginals w
       ~reference:(Sl.marginals_of reference)
       ~rows:(DS.nrows reference));
  (try
     ignore
       (Sl.drift_marginals w ~reference:[| Array.make 4 1 |] ~rows:4);
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ())

let test_drift_across_change_point () =
  (* Stream a drifting synthetic trace through a window and track the
     score against the pre-change reference: it must rise as the
     post-change rows displace the old ones, and fall back once the
     window is re-based on a post-change reference. *)
  let params = { Acq_data.Synthetic_gen.n = 8; gamma = 1; sel = 0.25 } in
  let rows = 2_000 and cp = 1_000 in
  let ds =
    Acq_data.Synthetic_gen.generate_drifting (Rng.create 5) params ~rows
      ~change_points:[ cp ]
  in
  let s = DS.schema ds in
  let reference =
    DS.create s (Array.init cp (fun i -> DS.row ds i))
  in
  let w = Sl.create s ~capacity:200 in
  let drift_at upto =
    Sl.clear w;
    for i = upto - 200 to upto - 1 do
      Sl.push w (DS.row ds i)
    done;
    Sl.drift w ~reference
  in
  let before = drift_at cp in
  let straddling = drift_at (cp + 100) in
  let after = drift_at (cp + 400) in
  Alcotest.(check bool) "quiet before the change" true (before < 0.05);
  Alcotest.(check bool) "rising mid-transition" true (straddling > before);
  Alcotest.(check bool) "high once the window turned over" true (after > 0.1);
  (* Re-basing the reference on post-change data clears the alarm. *)
  let reference' =
    DS.create s (Array.init 400 (fun i -> DS.row ds (cp + i)))
  in
  let settled = Sl.drift w ~reference:reference' in
  Alcotest.(check bool) "falls after re-basing" true (settled < 0.05)

let test_replan_pipeline () =
  (* A window over drifted lab data triggers drift and yields a
     working estimator for replanning. *)
  let ds = Acq_data.Lab_gen.generate (Rng.create 3) ~rows:6_000 in
  let history, live = DS.split_by_time ds ~train_fraction:0.5 in
  let w = Sl.create (DS.schema ds) ~capacity:1_000 in
  Sl.push_dataset w live;
  Alcotest.(check bool) "window full" true (Sl.is_full w);
  let q = Acq_workload.Query_gen.lab_query (Rng.create 4) ~train:history in
  let costs = Acq_data.Schema.costs (DS.schema ds) in
  let plan =
    (Acq_core.Planner.plan_with_estimator Acq_core.Planner.Heuristic q ~costs
       (Sl.estimator w))
      .Acq_core.Planner.plan
  in
  Alcotest.(check bool) "window-planned plan consistent" true
    (Acq_plan.Executor.consistent q ~costs plan live)

let () =
  Alcotest.run "sliding"
    [
      ( "window",
        [
          Alcotest.test_case "fill and size" `Quick test_fill_and_size;
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "incremental histogram" `Quick
            test_incremental_histogram;
          Alcotest.test_case "matches dataset" `Quick
            test_histogram_matches_dataset;
          Alcotest.test_case "push validation" `Quick test_push_validation;
          Alcotest.test_case "estimator" `Quick test_estimator_over_window;
          Alcotest.test_case "backend specs" `Quick test_backend_over_window;
          Alcotest.test_case "marginals" `Quick test_marginals_match_histograms;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ( "drift",
        [
          Alcotest.test_case "detects change" `Quick test_drift_detects_change;
          Alcotest.test_case "partial" `Quick test_drift_partial;
          Alcotest.test_case "empty window" `Quick test_drift_empty_window;
          Alcotest.test_case "marginal snapshot equivalence" `Quick
            test_drift_marginals_equivalence;
          Alcotest.test_case "across change point" `Quick
            test_drift_across_change_point;
          Alcotest.test_case "replan pipeline" `Quick test_replan_pipeline;
        ] );
    ]
