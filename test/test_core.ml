(* Unit tests for Acq_core: every planning algorithm, the subproblem
   and split-grid machinery, and the analytic cost model. The key
   oracle tests check the optimizers against brute force on instances
   small enough to enumerate. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module R = Acq_plan.Range
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module Ex = Acq_plan.Executor
module B = Acq_prob.Backend
module Sub = Acq_core.Subproblem
module Spsf = Acq_core.Spsf
module EC = Acq_core.Expected_cost
module P = Acq_core.Planner

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let schema3 () =
  S.create
    [
      A.discrete ~name:"cheap" ~cost:1.0 ~domain:4;
      A.discrete ~name:"exp1" ~cost:100.0 ~domain:4;
      A.discrete ~name:"exp2" ~cost:100.0 ~domain:4;
    ]

(* Correlated data: cheap attribute reveals both expensive ones. *)
let correlated_dataset ?(rows = 4_000) () =
  let rng = Rng.create 10 in
  let schema = schema3 () in
  let data =
    Array.init rows (fun _ ->
        let regime = Rng.int rng 4 in
        let e1 =
          if Rng.bernoulli rng 0.85 then regime else Rng.int rng 4
        in
        let e2 =
          if Rng.bernoulli rng 0.85 then 3 - regime else Rng.int rng 4
        in
        [| regime; e1; e2 |])
  in
  DS.create schema data

let query3 schema =
  Q.create schema
    [ Pred.inside ~attr:1 ~lo:2 ~hi:3; Pred.inside ~attr:2 ~lo:2 ~hi:3 ]

(* Independent binary data with chosen pass rates for closed-form cost
   checks. *)
let binary_dataset probs rows =
  let rng = Rng.create 11 in
  let n = Array.length probs in
  let schema =
    S.create
      (List.init n (fun i ->
           A.discrete
             ~name:(Printf.sprintf "b%d" i)
             ~cost:(10.0 *. float_of_int (i + 1))
             ~domain:2))
  in
  let data =
    Array.init rows (fun _ ->
        Array.map (fun p -> if Rng.bernoulli rng p then 1 else 0) probs)
  in
  DS.create schema data

(* ------------------------------------------------------------------ *)
(* Subproblem *)

let test_subproblem_basics () =
  let schema = schema3 () in
  let domains = S.domains schema in
  let sp = Sub.initial schema in
  Alcotest.(check bool) "nothing acquired" false (Sub.acquired sp ~domains 0);
  check_float "full acquisition cost" 100.0
    (Sub.acquisition_cost sp ~domains ~costs:(S.costs schema) 1);
  let sp' = Sub.with_range sp 1 (R.make 0 1) in
  Alcotest.(check bool) "narrowed = acquired" true (Sub.acquired sp' ~domains 1);
  check_float "acquired is free" 0.0
    (Sub.acquisition_cost sp' ~domains ~costs:(S.costs schema) 1);
  Alcotest.(check bool) "original untouched" false (Sub.acquired sp ~domains 1)

let test_subproblem_key_injective () =
  let schema = schema3 () in
  let sp = Sub.initial schema in
  let a = Sub.with_range sp 0 (R.make 0 1) in
  let b = Sub.with_range sp 0 (R.make 0 2) in
  Alcotest.(check bool) "distinct keys" true (Sub.key a <> Sub.key b);
  Alcotest.(check string) "stable key" (Sub.key a) (Sub.key a)

let test_subproblem_query_acquired () =
  let schema = schema3 () in
  let domains = S.domains schema in
  let q = query3 schema in
  let sp = Sub.initial schema in
  Alcotest.(check bool) "not acquired initially" false
    (Sub.all_query_attrs_acquired sp ~domains q);
  let sp = Sub.with_range sp 1 (R.make 2 3) in
  let sp = Sub.with_range sp 2 (R.make 0 1) in
  Alcotest.(check bool) "both query attrs acquired" true
    (Sub.all_query_attrs_acquired sp ~domains q);
  (* Cheap attr 0 irrelevant. *)
  Alcotest.(check bool) "ignores non-query attrs" true
    (Sub.all_query_attrs_acquired sp ~domains q)

(* ------------------------------------------------------------------ *)
(* Spsf *)

let test_spsf_equal_width () =
  let g = Spsf.equal_width ~domains:[| 8; 2 |] ~points_per_attr:3 in
  Alcotest.(check (array int)) "8-domain points" [| 2; 4; 6 |] (Spsf.points g 0);
  Alcotest.(check (array int)) "binary domain" [| 1 |] (Spsf.points g 1);
  check_float "spsf product" 3.0 (Spsf.spsf g)

let test_spsf_full () =
  let g = Spsf.full ~domains:[| 5 |] in
  Alcotest.(check (array int)) "all thresholds" [| 1; 2; 3; 4 |] (Spsf.points g 0)

let test_spsf_candidates_in_range () =
  let g = Spsf.equal_width ~domains:[| 16 |] ~points_per_attr:7 in
  let c = Spsf.candidates g 0 (R.make 4 9) in
  List.iter
    (fun x -> Alcotest.(check bool) "within (lo, hi]" true (x > 4 && x <= 9))
    c;
  Alcotest.(check bool) "nonempty" true (c <> []);
  Alcotest.(check (list int)) "none in singleton" []
    (Spsf.candidates g 0 (R.make 4 4))

let test_spsf_for_query_has_boundaries () =
  let schema = schema3 () in
  let q = query3 schema in
  let g = Spsf.for_query ~domains:(S.domains schema) ~points_per_attr:1 q in
  (* Predicate [2,3] on attr 1 needs threshold 2 (and 4 clamps to 3). *)
  Alcotest.(check bool) "boundary 2 present" true
    (Array.mem 2 (Spsf.points g 1))

(* ------------------------------------------------------------------ *)
(* Expected_cost: Eq. (3) equals Eq. (4) on the training data. *)

let test_expected_cost_matches_execution_seq () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs = S.costs (DS.schema ds) in
  let est = B.empirical ds in
  List.iter
    (fun order ->
      let plan = Plan.sequential order in
      check_close "Eq3 = Eq4"
        (Ex.average_cost q ~costs plan ds)
        (EC.of_plan q ~costs est plan))
    [ [ 0; 1 ]; [ 1; 0 ] ]

let test_expected_cost_matches_execution_tree () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs = S.costs (DS.schema ds) in
  let est = B.empirical ds in
  let plan =
    Plan.Test
      {
        attr = 0;
        threshold = 2;
        low = Plan.sequential [ 0; 1 ];
        high = Plan.sequential [ 1; 0 ];
      }
  in
  check_close "conditional Eq3 = Eq4"
    (Ex.average_cost q ~costs plan ds)
    (EC.of_plan q ~costs est plan)

let test_expected_cost_closed_form () =
  (* Independent bits: cost of order [0;1] is c0 + p0 * c1. *)
  let ds = binary_dataset [| 0.25; 0.5 |] 40_000 in
  let schema = DS.schema ds in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  let est = B.empirical ds in
  let cost = EC.of_order q ~costs:(S.costs schema) est [ 0; 1 ] in
  Alcotest.(check bool) "close to 10 + 0.25*20" true
    (Float.abs (cost -. 15.0) < 0.3)

(* ------------------------------------------------------------------ *)
(* Priority queue *)

let test_pqueue_ordering () =
  let pq = Acq_core.Priority_queue.create () in
  List.iter
    (fun (p, v) -> Acq_core.Priority_queue.push pq p v)
    [ (1.0, "a"); (5.0, "b"); (3.0, "c"); (4.0, "d"); (2.0, "e") ];
  Alcotest.(check int) "size" 5 (Acq_core.Priority_queue.size pq);
  let order = ref [] in
  let rec drain () =
    match Acq_core.Priority_queue.pop pq with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "max first" [ "b"; "d"; "c"; "e"; "a" ]
    (List.rev !order)

let test_pqueue_random_sorted () =
  let rng = Rng.create 12 in
  let pq = Acq_core.Priority_queue.create () in
  let values = Array.init 500 (fun _ -> Rng.float rng 1.0) in
  Array.iter (fun v -> Acq_core.Priority_queue.push pq v v) values;
  let prev = ref infinity in
  for _ = 1 to 500 do
    match Acq_core.Priority_queue.pop pq with
    | Some (p, _) ->
        Alcotest.(check bool) "non-increasing" true (p <= !prev);
        prev := p
    | None -> Alcotest.fail "queue drained early"
  done;
  Alcotest.(check bool) "empty at end" true (Acq_core.Priority_queue.is_empty pq)

let test_pqueue_peek () =
  let pq = Acq_core.Priority_queue.create () in
  Alcotest.(check bool) "peek empty" true (Acq_core.Priority_queue.peek pq = None);
  Acq_core.Priority_queue.push pq 2.0 "x";
  (match Acq_core.Priority_queue.peek pq with
  | Some (p, v) ->
      check_float "peek priority" 2.0 p;
      Alcotest.(check string) "peek value" "x" v
  | None -> Alcotest.fail "expected element");
  Alcotest.(check int) "peek does not pop" 1 (Acq_core.Priority_queue.size pq)

(* ------------------------------------------------------------------ *)
(* Naive *)

let test_naive_orders_by_rank () =
  (* pred0: cost 10, pass 0.9 -> rank 100; pred1: cost 20, pass 0.1 ->
     rank ~22. Naive must evaluate pred1 first. *)
  let ds = binary_dataset [| 0.9; 0.1 |] 20_000 in
  let schema = DS.schema ds in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  let order =
    Acq_core.Naive.order q ~costs:(S.costs schema) (B.empirical ds)
  in
  Alcotest.(check (list int)) "selective-but-pricier first" [ 1; 0 ] order

let test_naive_never_failing_last () =
  let ds = binary_dataset [| 1.0; 0.5 |] 1_000 in
  let schema = DS.schema ds in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  let order =
    Acq_core.Naive.order q ~costs:(S.costs schema) (B.empirical ds)
  in
  Alcotest.(check (list int)) "always-true pred last" [ 1; 0 ] order

(* ------------------------------------------------------------------ *)
(* Optseq: brute-force optimality over all m! orders. *)

let brute_force_best_order q ~costs est subset =
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun rest -> x :: rest)
              (permutations (List.filter (fun y -> y <> x) l)))
          l
  in
  List.fold_left
    (fun (best_o, best_c) order ->
      let c = EC.of_order q ~costs est order in
      if c < best_c then (order, c) else (best_o, best_c))
    ([], infinity) (permutations subset)

let test_optseq_matches_brute_force () =
  let rng = Rng.create 13 in
  for trial = 0 to 9 do
    let probs = Array.init 4 (fun _ -> 0.1 +. Rng.float rng 0.8) in
    let ds = binary_dataset probs 3_000 in
    let schema = DS.schema ds in
    let q =
      Q.create schema
        (List.init 4 (fun i -> Pred.inside ~attr:i ~lo:1 ~hi:1))
    in
    let costs = S.costs schema in
    let est = B.empirical ds in
    let _, opt_cost = Acq_core.Optseq.order q ~costs est in
    let _, brute_cost = brute_force_best_order q ~costs est [ 0; 1; 2; 3 ] in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "trial %d optimal" trial)
      brute_cost opt_cost
  done

let test_optseq_cost_is_realized () =
  (* The DP's reported cost equals the analytic cost of the order it
     returns. *)
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs = S.costs (DS.schema ds) in
  let est = B.empirical ds in
  let order, cost = Acq_core.Optseq.order q ~costs est in
  check_close "reported = recomputed" (EC.of_order q ~costs est order) cost

let test_optseq_respects_acquired () =
  let ds = binary_dataset [| 0.5; 0.5 |] 2_000 in
  let schema = DS.schema ds in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  let costs = S.costs schema in
  let est = B.empirical ds in
  let acquired = [| true; false |] in
  let order, cost = Acq_core.Optseq.order q ~costs ~acquired est in
  (* Attr 0 already paid: it should be evaluated first for free. *)
  Alcotest.(check (list int)) "free attr first" [ 0; 1 ] order;
  Alcotest.(check bool) "cost excludes attr 0" true (cost < 20.0 +. 0.1)

let test_optseq_subset () =
  let ds = binary_dataset [| 0.5; 0.5; 0.5 |] 2_000 in
  let schema = DS.schema ds in
  let q =
    Q.create schema (List.init 3 (fun i -> Pred.inside ~attr:i ~lo:1 ~hi:1))
  in
  let order, _ =
    Acq_core.Optseq.order q ~costs:(S.costs schema) ~subset:[ 0; 2 ]
      (B.empirical ds)
  in
  Alcotest.(check (list int)) "only subset, sorted by value" [ 0; 2 ]
    (List.sort compare order);
  Alcotest.(check int) "length 2" 2 (List.length order)

let test_optseq_limit () =
  let ds = binary_dataset (Array.make 2 0.5) 100 in
  let schema = DS.schema ds in
  let q =
    Q.create schema (List.init 2 (fun i -> Pred.inside ~attr:i ~lo:1 ~hi:1))
  in
  Alcotest.check_raises "too many predicates" Acq_core.Optseq.Too_many_predicates
    (fun () ->
      ignore
        (Acq_core.Optseq.order_of_patterns
           ~pattern_probs:(Array.make (1 lsl 16) 0.0)
           ~pred_costs:(Array.make 16 1.0)
           ~shared_attr:(Array.init 16 (fun i -> i))
           ()));
  ignore q

(* ------------------------------------------------------------------ *)
(* Greedyseq *)

let test_greedyseq_independent_matches_optseq () =
  (* With independent predicates the greedy rank ordering is optimal. *)
  let ds = binary_dataset [| 0.3; 0.7; 0.5 |] 20_000 in
  let schema = DS.schema ds in
  let q =
    Q.create schema (List.init 3 (fun i -> Pred.inside ~attr:i ~lo:1 ~hi:1))
  in
  let costs = S.costs schema in
  let est = B.empirical ds in
  let _, g = Acq_core.Greedyseq.order q ~costs est in
  let _, o = Acq_core.Optseq.order q ~costs est in
  Alcotest.(check bool) "greedy within 1% of optimal here" true
    (g <= o *. 1.01 +. 1e-9)

let test_greedyseq_four_approx () =
  (* Munagala et al.: greedy is 4-approximate. Verify on random
     correlated instances. *)
  let rng = Rng.create 14 in
  for _ = 1 to 5 do
    let schema =
      S.create
        (List.init 4 (fun i ->
             A.discrete ~name:(Printf.sprintf "x%d" i)
               ~cost:(1.0 +. Rng.float rng 99.0)
               ~domain:2))
    in
    let data =
      Array.init 2_000 (fun _ ->
          let base = Rng.int rng 2 in
          Array.init 4 (fun _ ->
              if Rng.bernoulli rng 0.7 then base else Rng.int rng 2))
    in
    let ds = DS.create schema data in
    let q =
      Q.create schema (List.init 4 (fun i -> Pred.inside ~attr:i ~lo:1 ~hi:1))
    in
    let costs = S.costs schema in
    let est = B.empirical ds in
    let _, g = Acq_core.Greedyseq.order q ~costs est in
    let _, o = Acq_core.Optseq.order q ~costs est in
    Alcotest.(check bool) "within factor 4" true (g <= (4.0 *. o) +. 1e-9)
  done

let test_greedyseq_emits_all_predicates () =
  (* Even when the reach probability collapses to zero, the order must
     contain every predicate (plan correctness). *)
  let schema =
    S.create
      [
        A.discrete ~name:"x0" ~cost:1.0 ~domain:2;
        A.discrete ~name:"x1" ~cost:1.0 ~domain:2;
        A.discrete ~name:"x2" ~cost:1.0 ~domain:2;
      ]
  in
  (* x0 is always 0, so the first predicate never passes. *)
  let ds = DS.create schema (Array.make 100 [| 0; 1; 1 |]) in
  let q =
    Q.create schema (List.init 3 (fun i -> Pred.inside ~attr:i ~lo:1 ~hi:1))
  in
  let order, _ =
    Acq_core.Greedyseq.order q ~costs:(S.costs schema) (B.empirical ds)
  in
  Alcotest.(check (list int)) "all three present" [ 0; 1; 2 ]
    (List.sort compare order)

(* ------------------------------------------------------------------ *)
(* Seq_planner *)

let test_seq_planner_dispatch () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs = S.costs (DS.schema ds) in
  let est = B.empirical ds in
  (* Below threshold: must equal OptSeq. *)
  let _, c1 = Acq_core.Seq_planner.order q ~costs est in
  let _, c2 = Acq_core.Optseq.order q ~costs est in
  check_close "optseq below threshold" c2 c1;
  (* Threshold 0 forces GreedySeq. *)
  let _, c3 = Acq_core.Seq_planner.order ~optseq_threshold:0 q ~costs est in
  let _, c4 = Acq_core.Greedyseq.order q ~costs est in
  check_close "greedyseq above threshold" c4 c3

(* ------------------------------------------------------------------ *)
(* Greedy_split / Greedy_plan *)

let test_greedy_split_finds_cheap_informative () =
  let ds = correlated_dataset () in
  let schema = DS.schema ds in
  let q = query3 schema in
  let costs = S.costs schema in
  let grid = Spsf.for_query ~domains:(S.domains schema) ~points_per_attr:3 q in
  let ranges = Sub.initial schema in
  match Acq_core.Greedy_split.find q ~costs ~grid ~ranges (B.empirical ds) with
  | None -> Alcotest.fail "expected a split"
  | Some s ->
      Alcotest.(check int) "splits on the cheap regime attr" 0 s.Acq_core.Greedy_split.attr;
      let _, seq_cost =
        Acq_core.Seq_planner.order q ~costs (B.empirical ds)
      in
      Alcotest.(check bool) "split beats sequential" true
        (s.Acq_core.Greedy_split.cost < seq_cost)

let test_greedy_split_none_without_candidates () =
  let schema = S.create [ A.discrete ~name:"x" ~cost:1.0 ~domain:2 ] in
  let ds = DS.create schema [| [| 0 |]; [| 1 |] |] in
  let q = Q.create schema [ Pred.inside ~attr:0 ~lo:1 ~hi:1 ] in
  let grid = Spsf.equal_width ~domains:[| 2 |] ~points_per_attr:1 in
  (* Range already narrowed to a single value: no candidates left. *)
  let ranges = [| R.make 1 1 |] in
  Alcotest.(check bool) "no split" true
    (Acq_core.Greedy_split.find q ~costs:(S.costs schema) ~grid ~ranges
       (B.empirical ds)
    = None)

let heuristic_cost ds q k =
  let r =
    P.plan
      ~options:{ P.default_options with max_splits = k; split_points_per_attr = 3 }
      P.Heuristic q ~train:ds
  in
  (r.P.plan, r.P.est_cost)

let test_greedy_plan_zero_splits_is_seq () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let plan, cost = heuristic_cost ds q 0 in
  Alcotest.(check int) "no tests" 0 (Plan.n_tests plan);
  let _, seq_cost =
    Acq_core.Seq_planner.order q ~costs:(S.costs (DS.schema ds)) (B.empirical ds)
  in
  check_close "cost equals CorrSeq" seq_cost cost

let test_greedy_plan_monotone_in_k () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs =
    List.map (fun k -> snd (heuristic_cost ds q k)) [ 0; 1; 2; 5; 10 ]
  in
  let rec monotone = function
    | a :: b :: rest -> a +. 1e-9 >= b && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing in k" true (monotone costs)

let test_greedy_plan_respects_max_splits () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let plan, _ = heuristic_cost ds q 2 in
  Alcotest.(check bool) "at most 2 tests" true (Plan.n_tests plan <= 2)

let test_greedy_plan_consistent () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let plan, _ = heuristic_cost ds q 5 in
  Alcotest.(check bool) "correct on training data" true
    (Ex.consistent q ~costs:(S.costs (DS.schema ds)) plan ds)

let test_greedy_plan_candidate_restriction () =
  let ds = correlated_dataset () in
  let schema = DS.schema ds in
  let q = query3 schema in
  let plan =
    (P.plan
       ~options:
         {
           P.default_options with
           max_splits = 5;
           candidate_attrs = Some [ 0 ];
           split_points_per_attr = 3;
         }
       P.Heuristic q ~train:ds)
      .P.plan
  in
  List.iter
    (fun a -> Alcotest.(check int) "only attr 0 tested" 0 a)
    (Plan.attrs_tested plan)

(* ------------------------------------------------------------------ *)
(* Exhaustive *)

let test_exhaustive_matches_enumeration () =
  (* On binary instances the exhaustive DP must equal the brute-force
     enumeration optimum. *)
  let rng = Rng.create 15 in
  for trial = 0 to 4 do
    let schema =
      S.create
        [
          A.discrete ~name:"x1" ~cost:(5.0 +. Rng.float rng 50.0) ~domain:2;
          A.discrete ~name:"x2" ~cost:(5.0 +. Rng.float rng 50.0) ~domain:2;
          A.discrete ~name:"x3" ~cost:1.0 ~domain:2;
        ]
    in
    let data =
      Array.init 2_000 (fun _ ->
          let x3 = Rng.int rng 2 in
          let x1 = if Rng.bernoulli rng 0.8 then x3 else 1 - x3 in
          let x2 = if Rng.bernoulli rng 0.7 then 1 - x3 else x3 in
          [| x1; x2; x3 |])
    in
    let ds = DS.create schema data in
    let q =
      Q.create schema
        [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
    in
    let costs = S.costs schema in
    let est = B.empirical ds in
    let grid = Spsf.full ~domains:(S.domains schema) in
    let _, exh = Acq_core.Exhaustive.plan q ~costs ~grid est in
    let _, brute = Acq_core.Enumerate.best q ~costs est in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "trial %d equals enumeration" trial)
      brute exh
  done

let test_exhaustive_beats_heuristic_on_grid () =
  let ds = correlated_dataset () in
  let schema = DS.schema ds in
  let q = query3 schema in
  let o = { P.default_options with split_points_per_attr = 3 } in
  let exh = (P.plan ~options:o P.Exhaustive q ~train:ds).P.est_cost in
  List.iter
    (fun k ->
      let h =
        (P.plan ~options:{ o with max_splits = k } P.Heuristic q ~train:ds)
          .P.est_cost
      in
      Alcotest.(check bool)
        (Printf.sprintf "exhaustive <= heuristic-%d" k)
        true (exh <= h +. 1e-6))
    [ 0; 1; 5; 10 ];
  let seq = (P.plan ~options:o P.Corr_seq q ~train:ds).P.est_cost in
  Alcotest.(check bool) "exhaustive <= corrseq" true (exh <= seq +. 1e-6);
  let nv = (P.plan ~options:o P.Naive q ~train:ds).P.est_cost in
  Alcotest.(check bool) "exhaustive <= naive" true (exh <= nv +. 1e-6)

let test_exhaustive_cost_is_realized () =
  let ds = correlated_dataset () in
  let schema = DS.schema ds in
  let q = query3 schema in
  let costs = S.costs schema in
  let o = { P.default_options with split_points_per_attr = 3 } in
  let r = P.plan ~options:o P.Exhaustive q ~train:ds in
  let plan = r.P.plan in
  check_close "reported = empirical train cost" r.P.est_cost
    (Ex.average_cost q ~costs plan ds);
  Alcotest.(check bool) "consistent" true (Ex.consistent q ~costs plan ds)

let test_exhaustive_budget () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  Alcotest.check_raises "budget enforced" Acq_core.Exhaustive.Budget_exceeded
    (fun () ->
      ignore
        (P.plan
           ~options:
             { P.default_options with split_points_per_attr = 3;
               exhaustive_budget = 2 }
           P.Exhaustive q ~train:ds))

let test_exhaustive_trivial_query () =
  (* A query decided by one attribute produces a plan costing at most
     that attribute. *)
  let schema =
    S.create
      [ A.discrete ~name:"a" ~cost:7.0 ~domain:4;
        A.discrete ~name:"b" ~cost:9.0 ~domain:4 ]
  in
  let rng = Rng.create 16 in
  let ds =
    DS.create schema
      (Array.init 500 (fun _ -> [| Rng.int rng 4; Rng.int rng 4 |]))
  in
  let q = Q.create schema [ Pred.inside ~attr:0 ~lo:0 ~hi:1 ] in
  let grid = Spsf.full ~domains:(S.domains schema) in
  let plan, cost =
    Acq_core.Exhaustive.plan q ~costs:(S.costs schema) ~grid (B.empirical ds)
  in
  Alcotest.(check bool) "cost is one acquisition" true
    (Float.abs (cost -. 7.0) < 1e-6);
  Alcotest.(check bool) "consistent" true
    (Ex.consistent q ~costs:(S.costs schema) plan ds)

(* ------------------------------------------------------------------ *)
(* Enumerate *)

let test_enumerate_count () =
  Alcotest.(check int) "count 1" 1 (Acq_core.Enumerate.count 1);
  Alcotest.(check int) "count 2" 2 (Acq_core.Enumerate.count 2);
  Alcotest.(check int) "count 3 = 12" 12 (Acq_core.Enumerate.count 3);
  Alcotest.(check int) "count 4" 576 (Acq_core.Enumerate.count 4)

let test_enumerate_produces_count () =
  let schema =
    S.create
      [
        A.discrete ~name:"x1" ~cost:10.0 ~domain:2;
        A.discrete ~name:"x2" ~cost:10.0 ~domain:2;
        A.discrete ~name:"x3" ~cost:1.0 ~domain:2;
      ]
  in
  let rng = Rng.create 17 in
  let ds =
    DS.create schema
      (Array.init 200 (fun _ ->
           [| Rng.int rng 2; Rng.int rng 2; Rng.int rng 2 |]))
  in
  let q =
    Q.create schema
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  let plans =
    Acq_core.Enumerate.all_plans q ~costs:(S.costs schema) (B.empirical ds)
  in
  Alcotest.(check int) "12 plans for the figure's example" 12
    (List.length plans);
  (* Every enumerated plan is executable and correct. *)
  List.iter
    (fun (p, _) ->
      Alcotest.(check bool) "each plan consistent" true
        (Ex.consistent q ~costs:(S.costs schema) p ds))
    plans

let test_enumerate_rejects_large () =
  let schema =
    S.create
      (List.init 5 (fun i ->
           A.discrete ~name:(Printf.sprintf "x%d" i) ~cost:1.0 ~domain:2))
  in
  let ds = DS.create schema [| Array.make 5 0 |] in
  let q = Q.create schema [ Pred.inside ~attr:0 ~lo:1 ~hi:1 ] in
  (try
     ignore (Acq_core.Enumerate.all_plans q ~costs:(S.costs schema) (B.empirical ds));
     Alcotest.fail "expected size guard"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Planner facade *)

let test_planner_all_algorithms_consistent () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs = S.costs (DS.schema ds) in
  List.iter
    (fun algo ->
      let r =
        P.plan
          ~options:{ P.default_options with split_points_per_attr = 3 }
          algo q ~train:ds
      in
      let plan = r.P.plan in
      Alcotest.(check bool)
        (P.algorithm_name algo ^ " consistent")
        true
        (Ex.consistent q ~costs plan ds);
      check_close
        (P.algorithm_name algo ^ " cost realized")
        (Ex.average_cost q ~costs plan ds)
        r.P.est_cost;
      Alcotest.(check bool)
        (P.algorithm_name algo ^ " plan_size recorded")
        true
        (r.P.stats.Acq_core.Search.plan_size = Acq_plan.Serialize.size plan);
      Alcotest.(check bool)
        (P.algorithm_name algo ^ " estimator instrumented")
        true
        (r.P.stats.Acq_core.Search.estimator_calls > 0))
    [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ]

let test_size_alpha_shrinks_plans () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let plan_with alpha =
    (P.plan
       ~options:
         {
           P.default_options with
           max_splits = 10;
           split_points_per_attr = 3;
           size_alpha = alpha;
         }
       P.Heuristic q ~train:ds)
      .P.plan
  in
  let free = Plan.n_tests (plan_with 0.0) in
  let taxed = Plan.n_tests (plan_with 0.5) in
  let prohibitive = Plan.n_tests (plan_with 1_000.0) in
  Alcotest.(check bool) "taxed <= free" true (taxed <= free);
  Alcotest.(check int) "prohibitive alpha kills all splits" 0 prohibitive

let test_expected_cost_acquired_attr_free () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let costs = S.costs (DS.schema ds) in
  let est = B.empirical ds in
  let paid = EC.of_order q ~costs est [ 0; 1 ] in
  let prepaid =
    EC.of_order q ~costs ~acquired:[| false; true; false |] est [ 0; 1 ]
  in
  check_close "prepaying attr 1 saves its cost" (paid -. 100.0) prepaid

let test_naive_tie_break_stable () =
  (* Identical rank: query order preserved. *)
  let ds = binary_dataset [| 0.5; 0.5 |] 10_000 in
  let schema = DS.schema ds in
  (* Force identical costs so ranks tie up to sampling noise: use a
     custom schema with equal costs. *)
  let schema2 =
    S.create
      [
        A.discrete ~name:"b0" ~cost:10.0 ~domain:2;
        A.discrete ~name:"b1" ~cost:10.0 ~domain:2;
      ]
  in
  let rows = Array.init 100 (fun i -> [| i mod 2; i mod 2 |]) in
  let ds2 = DS.create schema2 rows in
  let q =
    Q.create schema2
      [ Pred.inside ~attr:0 ~lo:1 ~hi:1; Pred.inside ~attr:1 ~lo:1 ~hi:1 ]
  in
  Alcotest.(check (list int)) "stable tie-break" [ 0; 1 ]
    (Acq_core.Naive.order q ~costs:(S.costs schema2) (B.empirical ds2));
  ignore schema

let test_spsf_for_query_dedups () =
  let schema = schema3 () in
  (* Two predicates sharing a boundary on the same attribute. *)
  let q =
    Q.create schema
      [ Pred.inside ~attr:1 ~lo:2 ~hi:3; Pred.outside ~attr:1 ~lo:2 ~hi:3 ]
  in
  let g = Spsf.for_query ~domains:(S.domains schema) ~points_per_attr:1 q in
  let pts = Array.to_list (Spsf.points g 1) in
  Alcotest.(check (list int)) "sorted unique" (List.sort_uniq compare pts) pts

let test_planner_ordering_quality () =
  let ds = correlated_dataset () in
  let q = query3 (DS.schema ds) in
  let o = { P.default_options with split_points_per_attr = 3 } in
  let cost algo = (P.plan ~options:o algo q ~train:ds).P.est_cost in
  Alcotest.(check bool) "corrseq <= naive" true
    (cost P.Corr_seq <= cost P.Naive +. 1e-9);
  Alcotest.(check bool) "heuristic <= corrseq" true
    (cost P.Heuristic <= cost P.Corr_seq +. 1e-9);
  Alcotest.(check bool) "exhaustive <= heuristic" true
    (cost P.Exhaustive <= cost P.Heuristic +. 1e-6)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "core"
    [
      ( "subproblem",
        [
          Alcotest.test_case "basics" `Quick test_subproblem_basics;
          Alcotest.test_case "key injective" `Quick test_subproblem_key_injective;
          Alcotest.test_case "query acquired" `Quick test_subproblem_query_acquired;
        ] );
      ( "spsf",
        [
          Alcotest.test_case "equal width" `Quick test_spsf_equal_width;
          Alcotest.test_case "full" `Quick test_spsf_full;
          Alcotest.test_case "candidates in range" `Quick
            test_spsf_candidates_in_range;
          Alcotest.test_case "query boundaries" `Quick
            test_spsf_for_query_has_boundaries;
        ] );
      ( "expected_cost",
        [
          Alcotest.test_case "Eq3 = Eq4 sequential" `Quick
            test_expected_cost_matches_execution_seq;
          Alcotest.test_case "Eq3 = Eq4 conditional" `Quick
            test_expected_cost_matches_execution_tree;
          Alcotest.test_case "closed form" `Quick test_expected_cost_closed_form;
        ] );
      ( "priority_queue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "random sorted" `Quick test_pqueue_random_sorted;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
        ] );
      ( "naive",
        [
          Alcotest.test_case "rank ordering" `Quick test_naive_orders_by_rank;
          Alcotest.test_case "never-failing last" `Quick
            test_naive_never_failing_last;
        ] );
      ( "optseq",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_optseq_matches_brute_force;
          Alcotest.test_case "cost realized" `Quick test_optseq_cost_is_realized;
          Alcotest.test_case "respects acquired" `Quick
            test_optseq_respects_acquired;
          Alcotest.test_case "subset" `Quick test_optseq_subset;
          Alcotest.test_case "size limit" `Quick test_optseq_limit;
        ] );
      ( "greedyseq",
        [
          Alcotest.test_case "independent optimal" `Quick
            test_greedyseq_independent_matches_optseq;
          Alcotest.test_case "4-approximation" `Quick test_greedyseq_four_approx;
          Alcotest.test_case "emits all predicates" `Quick
            test_greedyseq_emits_all_predicates;
        ] );
      ( "seq_planner",
        [ Alcotest.test_case "dispatch" `Quick test_seq_planner_dispatch ] );
      ( "greedy",
        [
          Alcotest.test_case "split finds informative attr" `Quick
            test_greedy_split_finds_cheap_informative;
          Alcotest.test_case "split none without candidates" `Quick
            test_greedy_split_none_without_candidates;
          Alcotest.test_case "k=0 is CorrSeq" `Quick
            test_greedy_plan_zero_splits_is_seq;
          Alcotest.test_case "monotone in k" `Quick test_greedy_plan_monotone_in_k;
          Alcotest.test_case "respects max splits" `Quick
            test_greedy_plan_respects_max_splits;
          Alcotest.test_case "consistent" `Quick test_greedy_plan_consistent;
          Alcotest.test_case "candidate restriction" `Quick
            test_greedy_plan_candidate_restriction;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "matches enumeration" `Quick
            test_exhaustive_matches_enumeration;
          Alcotest.test_case "beats heuristic on grid" `Quick
            test_exhaustive_beats_heuristic_on_grid;
          Alcotest.test_case "cost realized" `Quick
            test_exhaustive_cost_is_realized;
          Alcotest.test_case "budget enforced" `Quick test_exhaustive_budget;
          Alcotest.test_case "trivial query" `Quick test_exhaustive_trivial_query;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "count recurrence" `Quick test_enumerate_count;
          Alcotest.test_case "12 plans" `Quick test_enumerate_produces_count;
          Alcotest.test_case "size guard" `Quick test_enumerate_rejects_large;
        ] );
      ( "planner",
        [
          Alcotest.test_case "all consistent" `Quick
            test_planner_all_algorithms_consistent;
          Alcotest.test_case "quality ordering" `Quick test_planner_ordering_quality;
          Alcotest.test_case "size alpha shrinks plans" `Quick
            test_size_alpha_shrinks_plans;
          Alcotest.test_case "acquired attr free" `Quick
            test_expected_cost_acquired_attr_free;
          Alcotest.test_case "naive tie-break" `Quick test_naive_tie_break_stable;
          Alcotest.test_case "spsf dedup" `Quick test_spsf_for_query_dedups;
        ] );
    ]
