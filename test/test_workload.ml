(* Unit tests for Acq_workload: the paper's query generators, the
   train/test experiment harness, and the experiment registry. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module QG = Acq_workload.Query_gen
module Exp = Acq_workload.Experiment

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Query_gen *)

let test_lab_query_shape () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 1) ~rows:4_000 in
  let qrng = Rng.create 2 in
  for _ = 1 to 10 do
    let q = QG.lab_query qrng ~train:ds in
    Alcotest.(check int) "3 predicates" 3 (Q.n_predicates q);
    Alcotest.(check (list int)) "over the expensive attrs"
      [ Acq_data.Lab_gen.idx_voltage + 1; Acq_data.Lab_gen.idx_light + 1;
        Acq_data.Lab_gen.idx_humidity ]
      (List.sort compare (Q.attrs q))
  done

let test_lab_query_widths () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 3) ~rows:4_000 in
  let qrng = Rng.create 4 in
  let q = QG.lab_query qrng ~train:ds in
  Array.iter
    (fun (p : Pred.t) ->
      let sigma = QG.stddev_bins ds p.Pred.attr in
      let width = float_of_int (p.Pred.hi - p.Pred.lo + 1) in
      Alcotest.(check bool) "width ~ 2 sigma" true
        (Float.abs (width -. (2.0 *. sigma)) <= 1.0))
    (Q.predicates q)

let test_lab_query_varies () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 5) ~rows:2_000 in
  let qrng = Rng.create 6 in
  let a = QG.lab_query qrng ~train:ds in
  let b = QG.lab_query qrng ~train:ds in
  let bounds q =
    Array.to_list (Array.map (fun (p : Pred.t) -> (p.Pred.lo, p.Pred.hi)) (Q.predicates q))
  in
  Alcotest.(check bool) "different draws differ" true (bounds a <> bounds b)

let test_garden_query_shape () =
  let ds = Acq_data.Garden_gen.generate (Rng.create 7) ~n_motes:5 ~rows:1_000 in
  let schema = DS.schema ds in
  let qrng = Rng.create 8 in
  let q = QG.garden_query qrng ~schema ~n_motes:5 in
  Alcotest.(check int) "2 per mote" 10 (Q.n_predicates q);
  (* Identical band across motes; uniform polarity. *)
  let preds = Q.predicates q in
  let t0 = preds.(0) and t1 = preds.(2) in
  Alcotest.(check int) "same temp lo" t0.Pred.lo t1.Pred.lo;
  Alcotest.(check int) "same temp hi" t0.Pred.hi t1.Pred.hi;
  Array.iter
    (fun (p : Pred.t) ->
      Alcotest.(check bool) "uniform polarity" true
        (p.Pred.polarity = t0.Pred.polarity))
    preds

let test_garden_query_polarity_mix () =
  let ds = Acq_data.Garden_gen.generate (Rng.create 9) ~n_motes:2 ~rows:500 in
  let schema = DS.schema ds in
  let qrng = Rng.create 10 in
  let polarities =
    List.init 40 (fun _ ->
        (Q.predicates (QG.garden_query qrng ~schema ~n_motes:2)).(0).Pred.polarity)
  in
  Alcotest.(check bool) "both polarities appear" true
    (List.mem Pred.Inside polarities && List.mem Pred.Outside polarities)

let test_garden_query_width_bounds () =
  let ds = Acq_data.Garden_gen.generate (Rng.create 11) ~n_motes:2 ~rows:500 in
  let schema = DS.schema ds in
  let qrng = Rng.create 12 in
  for _ = 1 to 30 do
    let q = QG.garden_query qrng ~schema ~n_motes:2 in
    Array.iter
      (fun (p : Pred.t) ->
        let k = (S.domains schema).(p.Pred.attr) in
        let width = p.Pred.hi - p.Pred.lo + 1 in
        (* f in [1.25, 3.25] -> width in [K/3.25, K/1.25]. *)
        Alcotest.(check bool) "width within coverage band" true
          (width >= int_of_float (float_of_int k /. 3.25)
          && width <= int_of_float (float_of_int k /. 1.25)))
      (Q.predicates q)
  done

let test_synthetic_query () =
  let p = { Acq_data.Synthetic_gen.n = 10; gamma = 3; sel = 0.4 } in
  let schema = Acq_data.Synthetic_gen.schema p in
  let q = QG.synthetic_query p ~schema in
  Alcotest.(check int) "7 predicates" 7 (Q.n_predicates q);
  Array.iter
    (fun (pr : Pred.t) ->
      Alcotest.(check int) "equality on 1" 1 pr.Pred.lo;
      Alcotest.(check int) "equality on 1 (hi)" 1 pr.Pred.hi)
    (Q.predicates q)

(* ------------------------------------------------------------------ *)
(* Experiment *)

let experiment_fixture () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 13) ~rows:4_000 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let qrng = Rng.create 14 in
  let queries = List.init 4 (fun _ -> QG.lab_query qrng ~train) in
  let o = Acq_core.Planner.default_options in
  let specs =
    [
      {
        Exp.name = "Naive";
        build =
          (fun q ->
            Acq_core.Planner.plan ~options:o Acq_core.Planner.Naive q ~train);
      };
      {
        Exp.name = "Heuristic";
        build =
          (fun q ->
            Acq_core.Planner.plan ~options:o Acq_core.Planner.Heuristic q
              ~train);
      };
    ]
  in
  Exp.run ~specs ~queries ~train ~test ()

let test_experiment_run () =
  let runs = experiment_fixture () in
  Alcotest.(check int) "one run per query" 4 (List.length runs);
  List.iter
    (fun r ->
      Alcotest.(check int) "two costs" 2 (Array.length r.Exp.test_costs);
      Alcotest.(check int) "two est costs" 2 (Array.length r.Exp.est_costs);
      Alcotest.(check int) "two stats" 2 (Array.length r.Exp.plan_stats);
      Alcotest.(check bool) "consistent" true r.Exp.consistent;
      Array.iter
        (fun c -> Alcotest.(check bool) "positive cost" true (c > 0.0))
        r.Exp.test_costs;
      Array.iter
        (fun (s : Acq_core.Search.stats) ->
          Alcotest.(check bool) "estimator instrumented" true
            (s.Acq_core.Search.estimator_calls > 0);
          Alcotest.(check bool) "plan size recorded" true
            (s.Acq_core.Search.plan_size > 0))
        r.Exp.plan_stats)
    runs;
  Alcotest.(check bool) "all consistent" true (Exp.all_consistent runs);
  (* Per-planner totals aggregate cleanly across the workload. *)
  let totals = Exp.total_stats runs 1 in
  let by_hand =
    List.fold_left
      (fun acc r -> acc + r.Exp.plan_stats.(1).Acq_core.Search.estimator_calls)
      0 runs
  in
  Alcotest.(check int) "total_stats sums estimator calls" by_hand
    totals.Acq_core.Search.estimator_calls

let test_experiment_metrics () =
  (* Experiment.run under a live registry: per-query deltas attach to
     each run and total_metrics reconstructs the registry's monotone
     counters. The spec closures share the handle so planner counters
     land in the same registry as the executor's. *)
  let ds = Acq_data.Lab_gen.generate (Rng.create 13) ~rows:2_000 in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  let qrng = Rng.create 15 in
  let queries = List.init 3 (fun _ -> QG.lab_query qrng ~train) in
  let m = Acq_obs.Metrics.create () in
  let obs = Acq_obs.Telemetry.create ~metrics:m () in
  let o = Acq_core.Planner.default_options in
  let specs =
    [
      {
        Exp.name = "Heuristic";
        build =
          (fun q ->
            Acq_core.Planner.plan ~options:o ~telemetry:obs
              Acq_core.Planner.Heuristic q ~train);
      };
    ]
  in
  let runs = Exp.run ~obs ~specs ~queries ~train ~test () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "per-query delta non-empty" true
        (r.Exp.metrics <> []))
    runs;
  let totals = Exp.total_metrics runs in
  let final = Acq_obs.Metrics.snapshot m in
  let get snap k =
    match Acq_obs.Metrics.find snap k with Some v -> v | None -> 0.0
  in
  let plans = "acqp_planner_plans_total{algorithm=\"Heuristic\"}" in
  check_float "one plan per query" 3.0 (get final plans);
  check_float "totals rebuild the registry" (get final plans)
    (get totals plans);
  Alcotest.(check bool) "estimator calls recorded" true
    (get totals "acqp_planner_estimator_calls_total{algorithm=\"Heuristic\"}"
    > 0.0);
  Alcotest.(check bool) "executor acquisitions recorded" true
    (List.exists
       (fun (k, v) ->
         String.length k >= 32
         && String.sub k 0 32 = "acqp_executor_acquisitions_total"
         && v > 0.0)
       totals);
  (* The report path renders without raising. *)
  Acq_workload.Report.metrics_table ~limit:8 totals;
  (* Without a handle nothing attaches. *)
  let bare = Exp.run ~specs ~queries ~train ~test () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "no handle, no delta" true (r.Exp.metrics = []))
    bare

let test_experiment_gains () =
  let runs = experiment_fixture () in
  let g = Exp.gains runs ~baseline:0 ~target:1 in
  Alcotest.(check int) "one gain per query" 4 (Array.length g);
  Array.iter
    (fun v -> Alcotest.(check bool) "gain positive" true (v > 0.0))
    g;
  let s = Exp.summarize g in
  Alcotest.(check bool) "min <= median <= max" true
    (s.Exp.min <= s.Exp.median && s.Exp.median <= s.Exp.max);
  check_float "frac above min is 1" 1.0 (s.Exp.frac_above s.Exp.min);
  Alcotest.(check bool) "frac above huge is 0" true
    (s.Exp.frac_above (s.Exp.max +. 1.0) = 0.0)

let test_experiment_mean_cost () =
  let runs = experiment_fixture () in
  let manual =
    List.fold_left (fun acc r -> acc +. r.Exp.test_costs.(0)) 0.0 runs /. 4.0
  in
  check_float "mean cost" manual (Exp.mean_cost runs 0)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Acq_workload.Registry.id) Acq_workload.Registry.all in
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_find () =
  Alcotest.(check bool) "fig8a present" true
    (Acq_workload.Registry.find "fig8a" <> None);
  Alcotest.(check bool) "unknown absent" true
    (Acq_workload.Registry.find "fig99" = None)

let test_registry_covers_evaluation () =
  let ids = List.map (fun e -> e.Acq_workload.Registry.id) Acq_workload.Registry.all in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " covered") true (List.mem required ids))
    [ "fig1"; "fig2"; "fig3"; "fig8a"; "fig8b"; "fig8c"; "fig9"; "fig10";
      "fig11"; "fig12"; "scale" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "workload"
    [
      ( "query_gen",
        [
          Alcotest.test_case "lab shape" `Quick test_lab_query_shape;
          Alcotest.test_case "lab widths" `Quick test_lab_query_widths;
          Alcotest.test_case "lab varies" `Quick test_lab_query_varies;
          Alcotest.test_case "garden shape" `Quick test_garden_query_shape;
          Alcotest.test_case "garden polarity" `Quick test_garden_query_polarity_mix;
          Alcotest.test_case "garden widths" `Quick test_garden_query_width_bounds;
          Alcotest.test_case "synthetic" `Quick test_synthetic_query;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "run" `Quick test_experiment_run;
          Alcotest.test_case "metrics" `Quick test_experiment_metrics;
          Alcotest.test_case "gains" `Quick test_experiment_gains;
          Alcotest.test_case "mean cost" `Quick test_experiment_mean_cost;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "covers evaluation" `Quick
            test_registry_covers_evaluation;
        ] );
    ]
