(* Unit tests for Acq_sql: lexer, parser, and schema binding. *)

module L = Acq_sql.Lexer
module Ast = Acq_sql.Ast
module Parser = Acq_sql.Parser
module Catalog = Acq_sql.Catalog
module S = Acq_data.Schema
module A = Acq_data.Attribute
module D = Acq_data.Discretize
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query

(* ------------------------------------------------------------------ *)
(* Lexer *)

let token = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (L.describe t)) ( = )

let test_lexer_keywords_case_insensitive () =
  Alcotest.(check (list token)) "tokens"
    [ L.SELECT; L.STAR; L.WHERE; L.IDENT "temp"; L.GE; L.NUMBER 20.0; L.EOF ]
    (L.tokenize "select * WHERE temp >= 20")

let test_lexer_operators () =
  Alcotest.(check (list token)) "all comparison ops"
    [ L.LE; L.LT; L.GE; L.GT; L.EQ; L.EOF ]
    (L.tokenize "<= < >= > =")

let test_lexer_numbers () =
  Alcotest.(check (list token)) "floats and negatives"
    [ L.NUMBER 1.5; L.NUMBER (-2.0); L.NUMBER 300.0; L.EOF ]
    (L.tokenize "1.5 -2 3e2")

let test_lexer_punctuation () =
  Alcotest.(check (list token)) "parens and commas"
    [ L.LPAREN; L.IDENT "a"; L.COMMA; L.IDENT "b"; L.RPAREN; L.EOF ]
    (L.tokenize "(a, b)")

let test_lexer_error () =
  (try
     ignore (L.tokenize "a & b");
     Alcotest.fail "expected lexer error"
   with Failure msg ->
     Alcotest.(check bool) "mentions position" true
       (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parser_star_and_bands () =
  let s = Parser.parse "SELECT * WHERE 10 <= temp <= 20 AND light >= 300" in
  Alcotest.(check bool) "select *" true (s.Ast.select = None);
  Alcotest.(check int) "two conditions" 2 (List.length s.Ast.where);
  match s.Ast.where with
  | [ Ast.Band { lo; attr; hi }; Ast.Cmp { attr = a2; op = Ast.Ge; value } ] ->
      Alcotest.(check string) "band attr" "temp" attr;
      Alcotest.(check (float 0.0)) "band lo" 10.0 lo;
      Alcotest.(check (float 0.0)) "band hi" 20.0 hi;
      Alcotest.(check string) "cmp attr" "light" a2;
      Alcotest.(check (float 0.0)) "cmp value" 300.0 value
  | _ -> Alcotest.fail "unexpected shape"

let test_parser_columns () =
  let s = Parser.parse "SELECT light, temp WHERE temp = 3" in
  Alcotest.(check (option (list string))) "columns"
    (Some [ "light"; "temp" ]) s.Ast.select

let test_parser_not_and_between () =
  let s =
    Parser.parse "SELECT * WHERE NOT (5 <= humid <= 9) AND temp BETWEEN 1 AND 4"
  in
  (match s.Ast.where with
  | [ Ast.Not (Ast.Band { attr = "humid"; _ });
      Ast.Band { attr = "temp"; lo = 1.0; hi = 4.0 } ] ->
      ()
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check int) "two predicates" 2 (List.length s.Ast.where)

let test_parser_errors () =
  List.iter
    (fun bad ->
      try
        ignore (Parser.parse bad);
        Alcotest.fail ("expected parse failure for: " ^ bad)
      with Failure _ -> ())
    [
      "WHERE temp = 1";
      "SELECT * temp = 1";
      "SELECT * WHERE";
      "SELECT * WHERE temp";
      "SELECT * WHERE 10 <= temp";
      "SELECT * WHERE NOT temp = 1";
      "SELECT * WHERE temp = 1 AND";
      "SELECT * WHERE temp = 1 extra";
    ]

(* ------------------------------------------------------------------ *)
(* Catalog *)

let test_schema () =
  S.create
    [
      A.discrete ~name:"hour" ~cost:1.0 ~domain:24;
      A.continuous ~name:"light" ~cost:100.0
        ~binner:(D.equal_width ~lo:0.0 ~hi:800.0 ~bins:32);
      A.continuous ~name:"temp" ~cost:100.0
        ~binner:(D.equal_width ~lo:10.0 ~hi:35.0 ~bins:32);
    ]

let pred_of schema text =
  let c = Catalog.compile schema text in
  (Q.predicates c.Catalog.query).(0)

let test_catalog_band_binding () =
  let schema = test_schema () in
  let p = pred_of schema "SELECT * WHERE 100 <= light <= 300" in
  Alcotest.(check int) "attr resolved" 1 p.Pred.attr;
  Alcotest.(check int) "lo bin" 4 p.Pred.lo;
  Alcotest.(check int) "hi bin" 12 p.Pred.hi;
  Alcotest.(check bool) "inside" true (p.Pred.polarity = Pred.Inside)

let test_catalog_not_band () =
  let schema = test_schema () in
  let p = pred_of schema "SELECT * WHERE NOT (100 <= light <= 300)" in
  Alcotest.(check bool) "outside" true (p.Pred.polarity = Pred.Outside)

let test_catalog_comparisons () =
  let schema = test_schema () in
  let le = pred_of schema "SELECT * WHERE hour <= 6" in
  Alcotest.(check int) "le lo" 0 le.Pred.lo;
  Alcotest.(check int) "le hi" 6 le.Pred.hi;
  let lt = pred_of schema "SELECT * WHERE hour < 6" in
  Alcotest.(check int) "lt excludes 6" 5 lt.Pred.hi;
  let ge = pred_of schema "SELECT * WHERE hour >= 6" in
  Alcotest.(check int) "ge lo" 6 ge.Pred.lo;
  Alcotest.(check int) "ge hi" 23 ge.Pred.hi;
  let gt = pred_of schema "SELECT * WHERE hour > 6" in
  Alcotest.(check int) "gt excludes 6" 7 gt.Pred.lo;
  let eq = pred_of schema "SELECT * WHERE hour = 6" in
  Alcotest.(check int) "eq singleton lo" 6 eq.Pred.lo;
  Alcotest.(check int) "eq singleton hi" 6 eq.Pred.hi

let test_catalog_not_comparisons () =
  let schema = test_schema () in
  let p = pred_of schema "SELECT * WHERE NOT (hour <= 6)" in
  Alcotest.(check int) "becomes > 6" 7 p.Pred.lo;
  let e = pred_of schema "SELECT * WHERE NOT (hour = 6)" in
  Alcotest.(check bool) "eq negation is outside" true
    (e.Pred.polarity = Pred.Outside)

let test_catalog_continuous_lt_edge () =
  let schema = test_schema () in
  (* 100 is exactly the lower edge of bin 4, so light < 100 must stop
     at bin 3. *)
  let p = pred_of schema "SELECT * WHERE light < 100" in
  Alcotest.(check int) "strict below edge" 3 p.Pred.hi

let test_catalog_select_list () =
  let schema = test_schema () in
  let c = Catalog.compile schema "SELECT temp, hour WHERE hour = 3" in
  Alcotest.(check (list int)) "resolved, schema order" [ 0; 2 ] c.Catalog.select;
  let all = Catalog.compile schema "SELECT * WHERE hour = 3" in
  Alcotest.(check (list int)) "star is everything" [ 0; 1; 2 ] all.Catalog.select

let test_catalog_errors () =
  let schema = test_schema () in
  List.iter
    (fun bad ->
      try
        ignore (Catalog.compile schema bad);
        Alcotest.fail ("expected bind failure for: " ^ bad)
      with Failure _ -> ())
    [
      "SELECT * WHERE nosuch = 1";
      "SELECT nosuch WHERE hour = 1";
      "SELECT * WHERE hour < 0";
      "SELECT * WHERE 300 <= light <= 100";
    ]

let test_catalog_query_semantics () =
  (* The compiled query evaluates the same way the text reads. *)
  let schema = test_schema () in
  let c =
    Catalog.compile schema "SELECT * WHERE hour >= 6 AND 100 <= light <= 300"
  in
  let q = c.Catalog.query in
  Alcotest.(check bool) "match" true (Q.eval q [| 7; 8; 0 |]);
  Alcotest.(check bool) "hour too small" false (Q.eval q [| 3; 8; 0 |]);
  Alcotest.(check bool) "light out of band" false (Q.eval q [| 7; 20; 0 |])

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Hostile input: the daemon's parse path feeds untrusted bytes
   straight into Lexer/Parser/Catalog, so every malformed input must
   come back as a structured [Error _] — no exception may escape
   [parse_result]/[compile_result], and parsing must terminate. *)

let no_escape input =
  (match Parser.parse_result input with
  | Ok _ | Error _ -> ()
  | exception e ->
      Alcotest.failf "parse_result raised %s on %S" (Printexc.to_string e)
        (String.sub input 0 (min 64 (String.length input))));
  match Catalog.compile_result (test_schema ()) input with
  | Ok _ | Error _ -> true
  | exception e ->
      Alcotest.failf "compile_result raised %s on %S" (Printexc.to_string e)
        (String.sub input 0 (min 64 (String.length input)))

let fuzz_bytes =
  QCheck.Test.make ~count:500 ~name:"byte garbage yields structured errors"
    QCheck.(string_of_size Gen.(0 -- 200))
    no_escape

let valid_seed_queries =
  [|
    "SELECT * WHERE 100 <= light <= 300 AND hour <= 6";
    "SELECT hour, temp WHERE temp BETWEEN 15 AND 25";
    "SELECT * WHERE NOT (hour = 3) AND light >= 500";
    "SELECT * WHERE NOT (100 <= light <= 300)";
  |]

let fuzz_truncated =
  (* Every prefix of a valid query either parses or errors cleanly. *)
  QCheck.Test.make ~count:300 ~name:"truncated queries yield structured errors"
    QCheck.(pair (int_bound (Array.length valid_seed_queries - 1)) (int_bound 60))
    (fun (qi, len) ->
      let q = valid_seed_queries.(qi) in
      no_escape (String.sub q 0 (min len (String.length q))))

let fuzz_mutated =
  (* Flip one byte of a valid query to an arbitrary character. *)
  QCheck.Test.make ~count:500 ~name:"byte-flipped queries yield structured errors"
    QCheck.(triple (int_bound (Array.length valid_seed_queries - 1)) small_nat printable_char)
    (fun (qi, pos, c) ->
      let q = Bytes.of_string valid_seed_queries.(qi) in
      Bytes.set q (pos mod Bytes.length q) c;
      no_escape (Bytes.to_string q))

let test_hostile_overlong () =
  (* Over-long inputs: a 1 MB identifier, a 100k-predicate
     conjunction, and a megabyte of garbage all terminate with a
     structured result. *)
  ignore (no_escape ("SELECT * WHERE " ^ String.make 1_000_000 'x' ^ " = 1"));
  let preds = List.init 5_000 (fun i -> Printf.sprintf "hour >= %d" (i mod 24)) in
  ignore (no_escape ("SELECT * WHERE " ^ String.concat " AND " preds));
  ignore (no_escape (String.make 1_000_000 '('))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_hostile_deep_nesting () =
  (* NOT-nesting is capped: depth beyond the cap is a structured
     error, not a Stack_overflow crash. *)
  let deep n =
    "SELECT * WHERE "
    ^ String.concat "" (List.init n (fun _ -> "NOT ("))
    ^ "hour = 3"
    ^ String.make n ')'
  in
  (match Parser.parse_result (deep 10) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 10 should parse: %s" e);
  match Parser.parse_result (deep 100_000) with
  | Ok _ -> Alcotest.fail "expected a depth error"
  | Error e ->
      Alcotest.(check bool) "names the nesting cap" true
        (contains_sub e "nested")

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "keywords" `Quick test_lexer_keywords_case_insensitive;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "punctuation" `Quick test_lexer_punctuation;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "star and bands" `Quick test_parser_star_and_bands;
          Alcotest.test_case "columns" `Quick test_parser_columns;
          Alcotest.test_case "not and between" `Quick test_parser_not_and_between;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "band binding" `Quick test_catalog_band_binding;
          Alcotest.test_case "not band" `Quick test_catalog_not_band;
          Alcotest.test_case "comparisons" `Quick test_catalog_comparisons;
          Alcotest.test_case "not comparisons" `Quick test_catalog_not_comparisons;
          Alcotest.test_case "continuous < edge" `Quick
            test_catalog_continuous_lt_edge;
          Alcotest.test_case "select list" `Quick test_catalog_select_list;
          Alcotest.test_case "errors" `Quick test_catalog_errors;
          Alcotest.test_case "query semantics" `Quick test_catalog_query_semantics;
        ] );
      ( "hostile",
        [
          QCheck_alcotest.to_alcotest fuzz_bytes;
          QCheck_alcotest.to_alcotest fuzz_truncated;
          QCheck_alcotest.to_alcotest fuzz_mutated;
          Alcotest.test_case "over-long input" `Quick test_hostile_overlong;
          Alcotest.test_case "deep NOT nesting" `Quick test_hostile_deep_nesting;
        ] );
    ]
