(* Statistical-guarantee harness for the sampling stack: Hoeffding /
   Wilson interval kernels, confidence-interval coverage of the
   sampled backend over many fixed-seed resamples, the PAC planner's
   (epsilon, delta) certificate against a brute-force oracle, and the
   arm's determinism. Every trial is seeded, so the empirical rates
   below are exact reproducible numbers, not flaky estimates. *)

module Rng = Acq_util.Rng
module Stats = Acq_util.Stats
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Ser = Acq_plan.Serialize
module B = Acq_prob.Backend
module EC = Acq_core.Expected_cost
module P = Acq_core.Planner
module Search = Acq_core.Search

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Interval kernels *)

let test_hoeffding_radius () =
  Alcotest.(check (float 1e-6))
    "n=100 delta=0.05"
    (sqrt (log 40.0 /. 200.0))
    (Stats.hoeffding_radius ~n:100 ~delta:0.05);
  Alcotest.(check bool)
    "radius shrinks with n" true
    (Stats.hoeffding_radius ~n:400 ~delta:0.05
    < Stats.hoeffding_radius ~n:100 ~delta:0.05);
  Alcotest.(check bool)
    "radius grows as delta tightens" true
    (Stats.hoeffding_radius ~n:100 ~delta:0.01
    > Stats.hoeffding_radius ~n:100 ~delta:0.05);
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Stats.hoeffding_radius: n must be positive") (fun () ->
      ignore (Stats.hoeffding_radius ~n:0 ~delta:0.05))

let test_normal_quantile () =
  Alcotest.(check (float 1e-6)) "median" 0.0 (Stats.normal_quantile 0.5);
  Alcotest.(check (float 1e-4))
    "97.5th percentile" 1.959964 (Stats.normal_quantile 0.975);
  Alcotest.(check (float 1e-4))
    "2.5th percentile" (-1.959964) (Stats.normal_quantile 0.025);
  Alcotest.(check (float 1e-4))
    "99.5th percentile" 2.575829 (Stats.normal_quantile 0.995)

let test_wilson_ci () =
  let lo, hi = Stats.wilson_ci ~pos:50 ~n:100 ~delta:0.05 in
  Alcotest.(check (float 1e-3)) "balanced center lo" 0.4038 lo;
  Alcotest.(check (float 1e-3)) "balanced center hi" 0.5962 hi;
  (* Wilson never leaves [0,1] even at the boundaries, where the
     naive normal interval would. *)
  let lo0, _ = Stats.wilson_ci ~pos:0 ~n:20 ~delta:0.05 in
  let _, hi1 = Stats.wilson_ci ~pos:20 ~n:20 ~delta:0.05 in
  check_float "pos=0 floor" 0.0 lo0;
  check_float "pos=n ceiling" 1.0 hi1;
  (* Tighter than Hoeffding away from p = 1/2. *)
  let wlo, whi = Stats.wilson_ci ~pos:2 ~n:100 ~delta:0.05 in
  let eps = Stats.hoeffding_radius ~n:100 ~delta:0.05 in
  Alcotest.(check bool)
    "wilson beats hoeffding at skewed p" true
    (whi -. wlo < 2.0 *. eps)

(* ------------------------------------------------------------------ *)
(* Fixtures: a correlated 3-attribute window. *)

let named_schema domains =
  S.create
    (List.init (Array.length domains) (fun k ->
         A.discrete
           ~name:(Printf.sprintf "a%d" k)
           ~cost:(float_of_int ((k * 3) + 2))
           ~domain:domains.(k)))

let correlated_dataset seed domains rows =
  let n = Array.length domains in
  let rng = Rng.create seed in
  let data =
    Array.init rows (fun _ ->
        let regime = Rng.float rng 1.0 in
        Array.init n (fun k ->
            if Rng.bernoulli rng 0.7 then
              min
                (domains.(k) - 1)
                (int_of_float (regime *. float_of_int domains.(k)))
            else Rng.int rng domains.(k)))
  in
  DS.create (named_schema domains) data

(* ------------------------------------------------------------------ *)
(* Coverage: across 200 seeded resamples, the Hoeffding interval on a
   root and on a conditioned estimate must cover the exact (full
   window) probability at well above its nominal 1 - delta rate. *)

let n_coverage_trials = 200

let test_ci_coverage () =
  let delta = 0.1 in
  let domains = [| 4; 3; 2 |] in
  let ds = correlated_dataset 7 domains 4_000 in
  let exact = B.empirical ds in
  let p_root = Pred.inside ~attr:0 ~lo:2 ~hi:3 in
  let p_cond = Pred.inside ~attr:1 ~lo:0 ~hi:1 in
  let truth_root = B.pred_prob exact p_root in
  let truth_cond = B.pred_prob (B.restrict_pred exact p_root true) p_cond in
  let covered = ref 0 and total = ref 0 in
  let check_cover truth (lo, hi) =
    incr total;
    if lo <= truth +. 1e-12 && truth <= hi +. 1e-12 then incr covered
  in
  for seed = 1 to n_coverage_trials do
    let b = B.sampled ~seed ~n:256 ~delta ds in
    check_cover truth_root (B.pred_prob_ci b p_root);
    check_cover truth_cond
      (B.pred_prob_ci (B.restrict_pred b p_root true) p_cond)
  done;
  let rate = float_of_int !covered /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.4f >= 1 - delta (%g)" rate (1.0 -. delta))
    true
    (rate >= 1.0 -. delta);
  (* Sanity on the other side: intervals are not vacuous — a root
     interval at n=256 is strictly narrower than [0,1]. *)
  let lo, hi = B.pred_prob_ci (B.sampled ~seed:1 ~n:256 ~delta ds) p_root in
  Alcotest.(check bool) "interval informative" true (hi -. lo < 0.5)

(* ------------------------------------------------------------------ *)
(* Certificate: over 200 seeded instances, the PAC plan's certificate
   must satisfy both of its claims against the brute-force oracle
   computed on the full window —
     cost_bound >= true expected cost of the emitted plan, and
     cost_bound <= (1 + epsilon) * (true optimal sequential cost)
   — at a rate of at least 1 - max certificate delta (and 0.95). *)

let brute_force_best q ~costs est =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun rest -> x :: rest)
              (perms (List.filter (fun y -> y <> x) l)))
          l
  in
  let m = Q.n_predicates q in
  List.fold_left
    (fun best order -> Float.min best (EC.of_order q ~costs est order))
    infinity
    (perms (List.init m Fun.id))

let n_certificate_trials = 200

let test_certificate_holds () =
  let holds = ref 0 in
  let max_delta = ref 0.0 in
  let partial = ref 0 in
  for seed = 1 to n_certificate_trials do
    let domains = [| 3; 2; 2 |] in
    let ds = correlated_dataset (100 + seed) domains 400 in
    let schema = DS.schema ds in
    let costs = S.costs schema in
    let rng = Rng.create (500 + seed) in
    let preds =
      List.init 3 (fun attr ->
          let d = domains.(attr) in
          let lo = Rng.int rng d in
          let hi = lo + Rng.int rng (d - lo) in
          Pred.inside ~attr ~lo ~hi)
    in
    let q = Q.create schema preds in
    let sampled = B.sampled ~seed ~n:32 ~delta:0.002 ds in
    let plan, _est_cost, cert =
      Acq_core.Pac.plan ~epsilon_target:0.3 q ~costs sampled
    in
    let exact = B.empirical ds in
    let true_cost = EC.of_plan q ~costs exact plan in
    let oracle = brute_force_best q ~costs exact in
    max_delta := Float.max !max_delta cert.Search.delta;
    if cert.Search.samples < DS.nrows ds then incr partial;
    let upper_ok = cert.Search.cost_bound >= true_cost -. 1e-9 in
    let gap_ok =
      cert.Search.cost_bound
      <= ((1.0 +. cert.Search.epsilon) *. oracle) +. 1e-9
    in
    if upper_ok && gap_ok then incr holds
  done;
  let rate = float_of_int !holds /. float_of_int n_certificate_trials in
  Alcotest.(check bool)
    (Printf.sprintf "certificate holds at %.4f >= 0.95" rate)
    true (rate >= 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "certificate holds at %.4f >= 1 - max delta %.4f" rate
       !max_delta)
    true
    (rate >= 1.0 -. !max_delta);
  (* The harness only means something if refinement actually stops
     early somewhere: some trials must certify from a strict subsample. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d trials certified from a partial sample" !partial
       n_certificate_trials)
    true (!partial > 0)

(* ------------------------------------------------------------------ *)
(* Determinism and degenerate backends. *)

let test_pac_deterministic () =
  let domains = [| 3; 2; 2 |] in
  let ds = correlated_dataset 42 domains 600 in
  let schema = DS.schema ds in
  let costs = S.costs schema in
  let q =
    Q.create schema
      [
        Pred.inside ~attr:0 ~lo:1 ~hi:2;
        Pred.inside ~attr:1 ~lo:1 ~hi:1;
        Pred.inside ~attr:2 ~lo:0 ~hi:0;
      ]
  in
  let run () =
    Acq_core.Pac.plan ~epsilon_target:0.3 q ~costs
      (B.sampled ~seed:5 ~n:64 ~delta:0.01 ds)
  in
  let p1, c1, cert1 = run () in
  let p2, c2, cert2 = run () in
  Alcotest.(check bool)
    "plan byte-identical" true
    (Bytes.equal (Ser.encode p1) (Ser.encode p2));
  check_float "cost identical" c1 c2;
  Alcotest.(check string)
    "certificate identical"
    (Search.certificate_to_string cert1)
    (Search.certificate_to_string cert2);
  (* Same through the Planner facade, which swaps the spec to sampled
     for the Pac algorithm. *)
  let r1 = P.plan P.Pac q ~train:ds in
  let r2 = P.plan P.Pac q ~train:ds in
  Alcotest.(check bool)
    "facade deterministic" true
    (Bytes.equal (Ser.encode r1.P.plan) (Ser.encode r2.P.plan));
  Alcotest.(check bool)
    "facade attaches a certificate" true
    (r1.P.stats.Search.certificate <> None)

let test_pac_exact_backend () =
  (* Against a deterministic backend every interval is a point: the
     PAC planner reduces to exact argmin over all orders and certifies
     a zero gap with zero failure probability. *)
  let domains = [| 3; 2; 2 |] in
  let ds = correlated_dataset 43 domains 600 in
  let schema = DS.schema ds in
  let costs = S.costs schema in
  let q =
    Q.create schema
      [
        Pred.inside ~attr:0 ~lo:0 ~hi:1;
        Pred.inside ~attr:1 ~lo:1 ~hi:1;
        Pred.inside ~attr:2 ~lo:1 ~hi:1;
      ]
  in
  let exact = B.empirical ds in
  let _plan, cost, cert = Acq_core.Pac.plan q ~costs exact in
  check_float "epsilon 0" 0.0 cert.Search.epsilon;
  check_float "delta 0" 0.0 cert.Search.delta;
  Alcotest.(check int) "no samples reported" 0 cert.Search.samples;
  Alcotest.(check int) "no refinements" 0 cert.Search.refinements;
  check_float "cost equals brute-force optimum"
    (brute_force_best q ~costs exact)
    cost;
  check_float "cost_bound equals the cost" cost cert.Search.cost_bound

(* ------------------------------------------------------------------ *)
(* Wilson option: on the same 200-resample harness as the Hoeffding
   coverage test, the Wilson interval (recovered exactly as Pac's
   generic walk recovers it — success count from the point estimate,
   n from the restricted sample weight, the backend's delta) must hold
   its nominal coverage while being strictly tighter in aggregate at
   the skewed selectivities acquisitional predicates actually have. *)

let wilson_of_backend b p =
  match B.sampling b with
  | None ->
      let x = B.pred_prob b p in
      (x, x)
  | Some s ->
      let m = int_of_float (B.weight b) in
      if m = 0 then (0.0, 1.0)
      else
        let pos =
          int_of_float (Float.round (B.pred_prob b p *. float_of_int m))
        in
        Stats.wilson_ci ~pos ~n:m ~delta:s.B.delta

let test_wilson_tighter_at_equal_coverage () =
  let delta = 0.1 in
  let domains = [| 4; 3; 2 |] in
  let ds = correlated_dataset 7 domains 4_000 in
  let exact = B.empirical ds in
  (* A skewed predicate (truth well away from 1/2), where Wilson's
     variance-adaptive radius beats the distribution-free Hoeffding
     radius by the widest margin. *)
  let p_skew = Pred.inside ~attr:0 ~lo:3 ~hi:3 in
  let truth = B.pred_prob exact p_skew in
  let cov_w = ref 0 and cov_h = ref 0 in
  let width_w = ref 0.0 and width_h = ref 0.0 in
  for seed = 1 to n_coverage_trials do
    let b = B.sampled ~seed ~n:256 ~delta ds in
    let lo_w, hi_w = wilson_of_backend b p_skew in
    let lo_h, hi_h = B.pred_prob_ci b p_skew in
    if lo_w <= truth +. 1e-12 && truth <= hi_w +. 1e-12 then incr cov_w;
    if lo_h <= truth +. 1e-12 && truth <= hi_h +. 1e-12 then incr cov_h;
    width_w := !width_w +. (hi_w -. lo_w);
    width_h := !width_h +. (hi_h -. lo_h)
  done;
  let rate r = float_of_int !r /. float_of_int n_coverage_trials in
  Alcotest.(check bool)
    (Printf.sprintf "wilson coverage %.4f >= 1 - delta (%g)" (rate cov_w)
       (1.0 -. delta))
    true
    (rate cov_w >= 1.0 -. delta);
  Alcotest.(check bool)
    (Printf.sprintf "hoeffding coverage %.4f >= 1 - delta" (rate cov_h))
    true
    (rate cov_h >= 1.0 -. delta);
  Alcotest.(check bool)
    (Printf.sprintf "wilson strictly tighter: mean width %.4f vs %.4f"
       (!width_w /. float_of_int n_coverage_trials)
       (!width_h /. float_of_int n_coverage_trials))
    true
    (!width_w < 0.8 *. !width_h)

let test_wilson_planner_flag () =
  let domains = [| 3; 2; 2 |] in
  let ds = correlated_dataset 42 domains 600 in
  let schema = DS.schema ds in
  let costs = S.costs schema in
  let q =
    Q.create schema
      [
        Pred.inside ~attr:0 ~lo:1 ~hi:2;
        Pred.inside ~attr:1 ~lo:1 ~hi:1;
        Pred.inside ~attr:2 ~lo:0 ~hi:0;
      ]
  in
  (* Against an exact backend Wilson degenerates to the point exactly
     like Hoeffding: identical plan, cost, and zero-gap certificate. *)
  let exact = B.empirical ds in
  let p_h, c_h, cert_h = Acq_core.Pac.plan q ~costs exact in
  let p_w, c_w, cert_w =
    Acq_core.Pac.plan ~interval:Acq_core.Pac.Wilson q ~costs exact
  in
  Alcotest.(check bool)
    "degenerate: identical plan" true
    (Bytes.equal (Ser.encode p_h) (Ser.encode p_w));
  check_float "degenerate: identical cost" c_h c_w;
  check_float "degenerate: epsilon 0" cert_h.Search.epsilon
    cert_w.Search.epsilon;
  (* On a sampled backend the Wilson walk is deterministic and never
     needs more refinement rounds than Hoeffding on the same instance
     (its intervals are nested tighter at every round here). *)
  let run interval =
    Acq_core.Pac.plan ~interval ~epsilon_target:0.3 q ~costs
      (B.sampled ~seed:5 ~n:64 ~delta:0.01 ds)
  in
  let _, cw1, certw1 = run Acq_core.Pac.Wilson in
  let _, cw2, certw2 = run Acq_core.Pac.Wilson in
  check_float "sampled wilson deterministic (cost)" cw1 cw2;
  Alcotest.(check string)
    "sampled wilson deterministic (certificate)"
    (Search.certificate_to_string certw1)
    (Search.certificate_to_string certw2);
  let _, _, cert_hs = run Acq_core.Pac.Hoeffding in
  Alcotest.(check bool)
    (Printf.sprintf "wilson refinements %d <= hoeffding %d"
       certw1.Search.refinements cert_hs.Search.refinements)
    true
    (certw1.Search.refinements <= cert_hs.Search.refinements);
  (* The Planner facade threads options.pac_interval through. *)
  let wopts = { P.default_options with P.pac_interval = Acq_core.Pac.Wilson } in
  let r = P.plan ~options:wopts P.Pac q ~train:ds in
  Alcotest.(check bool)
    "facade with wilson attaches a certificate" true
    (r.P.stats.Search.certificate <> None);
  Alcotest.(check string)
    "interval names" "wilson"
    (Acq_core.Pac.interval_name Acq_core.Pac.Wilson)

let test_pac_respects_deadline () =
  let domains = [| 3; 2; 2 |] in
  let ds = correlated_dataset 44 domains 400 in
  let schema = DS.schema ds in
  let q = Q.create schema [ Pred.inside ~attr:0 ~lo:1 ~hi:2 ] in
  let search = Search.create ~deadline_ms:0.0 () in
  Alcotest.check_raises "dead on arrival" Search.Deadline_exceeded (fun () ->
      ignore
        (Acq_core.Pac.plan ~search q ~costs:(S.costs schema)
           (B.sampled ~seed:1 ~n:16 ~delta:0.05 ds)))

let () =
  Alcotest.run "pac"
    [
      ( "kernels",
        [
          Alcotest.test_case "hoeffding radius" `Quick test_hoeffding_radius;
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
          Alcotest.test_case "wilson interval" `Quick test_wilson_ci;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "interval coverage, 200 resamples" `Quick
            test_ci_coverage;
          Alcotest.test_case "wilson tighter at equal coverage, 200 resamples"
            `Quick test_wilson_tighter_at_equal_coverage;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "PAC bound vs brute force, 200 instances" `Quick
            test_certificate_holds;
        ] );
      ( "planner",
        [
          Alcotest.test_case "deterministic replay" `Quick
            test_pac_deterministic;
          Alcotest.test_case "exact backend degenerates" `Quick
            test_pac_exact_backend;
          Alcotest.test_case "wilson interval option" `Quick
            test_wilson_planner_flag;
          Alcotest.test_case "deadline enforced" `Quick
            test_pac_respects_deadline;
        ] );
    ]
