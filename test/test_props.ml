(* Property-based tests (QCheck, registered as alcotest cases).

   These enforce the cross-module invariants from DESIGN.md:
   1. every planner-produced plan computes exactly the WHERE clause;
   2. analytic expected cost (Eq. 3) = empirical mean traversal cost
      (Eq. 4) on the training data;
   3. optimizer dominance: Exhaustive <= Heuristic-k <= CorrSeq (on
      the shared grid, on training data), OptSeq <= GreedySeq;
   4. serialization round-trips and ζ(P) is the encoded length;
   plus algebraic properties of the lower layers. *)

module Rng = Acq_util.Rng
module DS = Acq_data.Dataset
module S = Acq_data.Schema
module A = Acq_data.Attribute
module R = Acq_plan.Range
module Pred = Acq_plan.Predicate
module Q = Acq_plan.Query
module Plan = Acq_plan.Plan
module Ex = Acq_plan.Executor
module Ser = Acq_plan.Serialize
module B = Acq_prob.Backend
module P = Acq_core.Planner

(* ------------------------------------------------------------------ *)
(* Generators for random planning instances. *)

(* A random instance: 3-5 attributes with domains 2-6, mixed costs,
   correlated columns (a latent regime drives every attribute), and a
   random conjunctive query of 1-3 predicates over distinct attrs. *)
type instance = {
  seed : int;
  n_attrs : int;
  domains : int array;
  costs : float array;
  n_preds : int;
}

let instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n_attrs = int_range 3 5 in
    let* domains = array_repeat n_attrs (int_range 2 6) in
    let* costs =
      array_repeat n_attrs (oneofl [ 1.0; 5.0; 20.0; 100.0 ])
    in
    let* n_preds = int_range 1 (min 3 n_attrs) in
    return { seed; n_attrs; domains; costs; n_preds })

let instance_print i =
  Printf.sprintf "{seed=%d; domains=[%s]; costs=[%s]; preds=%d}" i.seed
    (String.concat ";" (Array.to_list (Array.map string_of_int i.domains)))
    (String.concat ";"
       (Array.to_list (Array.map (Printf.sprintf "%g") i.costs)))
    i.n_preds

let build_instance i =
  let schema =
    S.create
      (List.init i.n_attrs (fun k ->
           A.discrete
             ~name:(Printf.sprintf "a%d" k)
             ~cost:i.costs.(k) ~domain:i.domains.(k)))
  in
  let rng = Rng.create i.seed in
  let rows =
    Array.init 600 (fun _ ->
        let regime = Rng.float rng 1.0 in
        Array.init i.n_attrs (fun k ->
            if Rng.bernoulli rng 0.75 then
              (* regime-driven value *)
              min (i.domains.(k) - 1)
                (int_of_float (regime *. float_of_int i.domains.(k)))
            else Rng.int rng i.domains.(k)))
  in
  let ds = DS.create schema rows in
  (* Random predicates over distinct attributes. *)
  let attrs = Rng.sample_without_replacement rng i.n_preds i.n_attrs in
  let preds =
    Array.to_list
      (Array.map
         (fun attr ->
           let k = i.domains.(attr) in
           let lo = Rng.int rng k in
           let hi = lo + Rng.int rng (k - lo) in
           if Rng.bernoulli rng 0.25 && not (lo = 0 && hi = k - 1) then
             Pred.outside ~attr ~lo ~hi
           else Pred.inside ~attr ~lo ~hi)
         attrs)
  in
  (ds, Q.create schema preds)

let options = { P.default_options with split_points_per_attr = 3 }

let plan_cost algo ds q =
  let r = P.plan ~options algo q ~train:ds in
  (r.P.plan, r.P.est_cost)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_planners_consistent =
  QCheck2.Test.make ~count:60 ~name:"planner plans compute the WHERE clause"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      List.for_all
        (fun algo ->
          let plan, _ = plan_cost algo ds q in
          Ex.consistent q ~costs plan ds)
        [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ])

let prop_eq3_eq4 =
  QCheck2.Test.make ~count:60 ~name:"Eq3 (analytic) = Eq4 (empirical) on train"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      let est = B.empirical ds in
      List.for_all
        (fun algo ->
          let plan, _ = plan_cost algo ds q in
          let analytic = Acq_core.Expected_cost.of_plan q ~costs est plan in
          let empirical = Ex.average_cost q ~costs plan ds in
          Float.abs (analytic -. empirical) < 1e-6)
        [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ])

let prop_dominance =
  QCheck2.Test.make ~count:50
    ~name:"exhaustive <= heuristic <= corrseq <= naive-or-equal (train)"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let _, naive = plan_cost P.Naive ds q in
      let _, seq = plan_cost P.Corr_seq ds q in
      let _, heur = plan_cost P.Heuristic ds q in
      let _, exh = plan_cost P.Exhaustive ds q in
      exh <= heur +. 1e-6 && heur <= seq +. 1e-6 && seq <= naive +. 1e-6)

let prop_heuristic_monotone =
  QCheck2.Test.make ~count:40 ~name:"heuristic cost non-increasing in max_splits"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let cost k =
        (P.plan ~options:{ options with max_splits = k } P.Heuristic q ~train:ds)
          .P.est_cost
      in
      let c0 = cost 0 and c2 = cost 2 and c6 = cost 6 in
      c0 +. 1e-9 >= c2 && c2 +. 1e-9 >= c6)

let prop_optseq_beats_greedy =
  QCheck2.Test.make ~count:60 ~name:"optseq <= greedyseq"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      let est = B.empirical ds in
      let _, o = Acq_core.Optseq.order q ~costs est in
      let _, g = Acq_core.Greedyseq.order q ~costs est in
      o <= g +. 1e-9)

let prop_seq_orders_complete =
  QCheck2.Test.make ~count:60 ~name:"sequential orders contain every predicate"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      let est = B.empirical ds in
      let all = List.init (Q.n_predicates q) (fun j -> j) in
      let check order = List.sort compare order = all in
      check (fst (Acq_core.Optseq.order q ~costs est))
      && check (fst (Acq_core.Greedyseq.order q ~costs est))
      && check (Acq_core.Naive.order q ~costs est))

let prop_serialize_roundtrip_planner =
  QCheck2.Test.make ~count:60 ~name:"serialize roundtrip (planner output)"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      List.for_all
        (fun algo ->
          let plan, _ = plan_cost algo ds q in
          Plan.equal plan (Ser.decode (Ser.encode plan))
          && Ser.size plan = Bytes.length (Ser.encode plan))
        [ P.Heuristic; P.Exhaustive ])

(* Random plan trees (not necessarily semantically correct plans) for
   serialization robustness. *)
let random_tree_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              return (Plan.const true);
              return (Plan.const false);
              map (fun ids -> Plan.Leaf (Plan.Seq (Array.of_list ids)))
                (list_size (int_range 0 4) (int_range 0 30));
            ]
        else
          let* attr = int_range 0 50 in
          let* threshold = int_range 0 1000 in
          let* low = self (n / 2) in
          let* high = self (n / 2) in
          return (Plan.Test { attr; threshold; low; high })))

let prop_serialize_roundtrip_random =
  QCheck2.Test.make ~count:200 ~name:"serialize roundtrip (random trees)"
    random_tree_gen (fun p ->
      Plan.equal p (Ser.decode (Ser.encode p)))

(* Range algebra. *)
let range_gen =
  QCheck2.Gen.(
    let* lo = int_range 0 20 in
    let* w = int_range 0 20 in
    return (R.make lo (lo + w)))

let prop_range_split_partitions =
  QCheck2.Gen.(
    let* r = range_gen in
    if R.width r < 2 then return None
    else
      let* x = int_range (r.R.lo + 1) r.R.hi in
      return (Some (r, x)))
  |> fun gen ->
  QCheck2.Test.make ~count:300 ~name:"range split partitions" gen (function
    | None -> true
    | Some (r, x) ->
        let lo, hi = R.split r x in
        R.width lo + R.width hi = R.width r
        && (not (R.intersects lo hi))
        && R.subset lo r && R.subset hi r)

let prop_predicate_truth_sound =
  QCheck2.Gen.(
    let* k = int_range 2 12 in
    let* lo = int_range 0 (k - 1) in
    let* hi = int_range lo (k - 1) in
    let* neg = bool in
    let* rlo = int_range 0 (k - 1) in
    let* rhi = int_range rlo (k - 1) in
    return (k, lo, hi, neg, R.make rlo rhi))
  |> fun gen ->
  QCheck2.Test.make ~count:500 ~name:"truth_under sound for every range value"
    gen (fun (_k, lo, hi, neg, r) ->
      let p =
        if neg then Pred.outside ~attr:0 ~lo ~hi else Pred.inside ~attr:0 ~lo ~hi
      in
      let vals = List.init (R.width r) (fun i -> r.R.lo + i) in
      match Pred.truth_under p r with
      | Pred.True -> List.for_all (Pred.eval p) vals
      | Pred.False -> List.for_all (fun v -> not (Pred.eval p v)) vals
      | Pred.Unknown ->
          List.exists (Pred.eval p) vals
          && List.exists (fun v -> not (Pred.eval p v)) vals)

(* Histogram prefix sums. *)
let prop_histogram_ranges =
  QCheck2.Gen.(list_size (int_range 2 12) (int_range 0 50)) |> fun gen ->
  QCheck2.Test.make ~count:300 ~name:"histogram range = sum of value probs" gen
    (fun counts ->
      let counts = Array.of_list counts in
      let h = Acq_prob.Histogram.of_counts counts in
      let k = Array.length counts in
      let total = Acq_util.Array_util.sum_int counts in
      if total = 0 then Acq_prob.Histogram.prob_range h (R.make 0 (k - 1)) = 0.0
      else begin
        let ok = ref true in
        for lo = 0 to k - 1 do
          for hi = lo to k - 1 do
            let direct =
              let s = ref 0 in
              for v = lo to hi do
                s := !s + counts.(v)
              done;
              float_of_int !s /. float_of_int total
            in
            if
              Float.abs (Acq_prob.Histogram.prob_range h (R.make lo hi) -. direct)
              > 1e-9
            then ok := false
          done
        done;
        !ok
      end)

(* Stats sanity. *)
let prop_percentile_bounds =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 40) (float_range (-100.) 100.))
      (float_range 0.0 100.0))
  |> fun gen ->
  QCheck2.Test.make ~count:300 ~name:"percentile within min/max" gen
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = Acq_util.Stats.percentile a p in
      let lo, hi = Acq_util.Stats.min_max a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_rng_sample_distinct =
  QCheck2.Gen.(
    let* seed = int_range 0 100000 in
    let* n = int_range 1 50 in
    let* k = int_range 0 n in
    return (seed, k, n))
  |> fun gen ->
  QCheck2.Test.make ~count:300 ~name:"sample_without_replacement distinct" gen
    (fun (seed, k, n) ->
      let s = Rng.sample_without_replacement (Rng.create seed) k n in
      Array.length s = k
      && List.length (List.sort_uniq compare (Array.to_list s)) = k
      && Array.for_all (fun v -> v >= 0 && v < n) s)

let prop_csv_roundtrip =
  QCheck2.Gen.(
    list_size (int_range 1 6)
      (list_size (int_range 1 5) (string_size ~gen:printable (int_range 0 12))))
  |> fun gen ->
  QCheck2.Test.make ~count:300 ~name:"csv roundtrip arbitrary strings" gen
    (fun rows ->
      Acq_util.Csv.parse_string (Acq_util.Csv.to_string rows) = rows)

let prop_pattern_probs_normalized =
  QCheck2.Test.make ~count:60 ~name:"pattern probabilities sum to 1"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let est = B.empirical ds in
      let probs = B.pattern_probs est (Q.predicates q) in
      Float.abs (Acq_util.Array_util.sum_float probs -. 1.0) < 1e-9)

let prop_exhaustive_cost_realized =
  QCheck2.Test.make ~count:30 ~name:"exhaustive reported cost = train cost"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      let plan, cost = plan_cost P.Exhaustive ds q in
      Float.abs (cost -. Ex.average_cost q ~costs plan ds) < 1e-6)

let prop_plan_size_bounded =
  QCheck2.Test.make ~count:40
    ~name:"heuristic split count bounded by max_splits"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      List.for_all
        (fun k ->
          let plan =
            (P.plan ~options:{ options with max_splits = k } P.Heuristic q
               ~train:ds)
              .P.plan
          in
          Plan.n_tests plan <= k)
        [ 0; 1; 3 ])

(* Random board assignment over an instance's attributes. *)
let board_instance_gen =
  QCheck2.Gen.(
    let* i = instance_gen in
    let* n_boards = int_range 1 3 in
    let* board = array_repeat i.n_attrs (int_range 0 (n_boards - 1)) in
    let* wakeup = array_repeat n_boards (oneofl [ 0.0; 10.0; 50.0; 90.0 ]) in
    let* read = array_repeat i.n_attrs (oneofl [ 1.0; 5.0; 20.0 ]) in
    return (i, board, wakeup, read))

let prop_boards_eq3_eq4 =
  QCheck2.Test.make ~count:50
    ~name:"Eq3 = Eq4 under random board models"
    ~print:(fun (i, _, _, _) -> instance_print i)
    board_instance_gen
    (fun (i, board, wakeup, read) ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      let model = Acq_plan.Cost_model.boards ~board ~wakeup ~read in
      let est = B.empirical ds in
      let opts = { options with cost_model = Some model } in
      List.for_all
        (fun algo ->
          let r = P.plan ~options:opts algo q ~train:ds in
          let plan = r.P.plan and reported = r.P.est_cost in
          let analytic =
            Acq_core.Expected_cost.of_plan ~model q ~costs est plan
          in
          let empirical = Ex.average_cost ~model q ~costs plan ds in
          Ex.consistent q ~costs plan ds
          && Float.abs (analytic -. empirical) < 1e-6
          && Float.abs (reported -. empirical) < 1e-6)
        [ P.Corr_seq; P.Heuristic; P.Exhaustive ])

let prop_boards_dominance =
  QCheck2.Test.make ~count:40
    ~name:"exhaustive <= heuristic <= corrseq under board models"
    ~print:(fun (i, _, _, _) -> instance_print i)
    board_instance_gen
    (fun (i, board, wakeup, read) ->
      let ds, q = build_instance i in
      let model = Acq_plan.Cost_model.boards ~board ~wakeup ~read in
      let opts = { options with cost_model = Some model } in
      let cost algo = (P.plan ~options:opts algo q ~train:ds).P.est_cost in
      cost P.Exhaustive <= cost P.Heuristic +. 1e-6
      && cost P.Heuristic <= cost P.Corr_seq +. 1e-6)

let prop_sliding_window_histogram =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* capacity = int_range 1 30 in
    let* pushes = int_range 0 80 in
    return (seed, capacity, pushes))
  |> fun gen ->
  QCheck2.Test.make ~count:200
    ~name:"sliding histograms match window contents" gen
    (fun (seed, capacity, pushes) ->
      let schema =
        S.create
          [ A.discrete ~name:"x" ~cost:1.0 ~domain:5;
            A.discrete ~name:"y" ~cost:1.0 ~domain:3 ]
      in
      let w = Acq_prob.Sliding.create schema ~capacity in
      let rng = Rng.create seed in
      let pushed = ref [] in
      for _ = 1 to pushes do
        let row = [| Rng.int rng 5; Rng.int rng 3 |] in
        pushed := row :: !pushed;
        Acq_prob.Sliding.push w row
      done;
      let expected_rows =
        let l = List.rev !pushed in
        let drop = max 0 (List.length l - capacity) in
        List.filteri (fun i _ -> i >= drop) l
      in
      let hist attr k =
        let h = Array.make k 0 in
        List.iter (fun r -> h.(r.(attr)) <- h.(r.(attr)) + 1) expected_rows;
        h
      in
      Acq_prob.Sliding.size w = List.length expected_rows
      && Acq_prob.Sliding.histogram w 0 = hist 0 5
      && Acq_prob.Sliding.histogram w 1 = hist 1 3)

let prop_board_awareness_never_hurts =
  QCheck2.Test.make ~count:40
    ~name:"board-aware optseq <= blind optseq (measured under model)"
    ~print:(fun (i, _, _, _) -> instance_print i)
    board_instance_gen
    (fun (i, board, wakeup, read) ->
      let ds, q = build_instance i in
      let costs = S.costs (DS.schema ds) in
      let model = Acq_plan.Cost_model.boards ~board ~wakeup ~read in
      let est = B.empirical ds in
      let aware, _ = Acq_core.Optseq.order ~model q ~costs est in
      let blind, _ = Acq_core.Optseq.order q ~costs est in
      let measure order =
        Ex.average_cost ~model q ~costs (Plan.sequential order) ds
      in
      measure aware <= measure blind +. 1e-6)

let prop_existential_consistent =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* n_groups = int_range 1 3 in
    return (seed, n_groups))
  |> fun gen ->
  QCheck2.Test.make ~count:60 ~name:"existential planners always correct" gen
    (fun (seed, n_groups) ->
      let schema =
        S.create
          (List.init 5 (fun k ->
               A.discrete
                 ~name:(Printf.sprintf "e%d" k)
                 ~cost:(if k = 0 then 1.0 else 50.0)
                 ~domain:3))
      in
      let rng = Rng.create seed in
      let ds =
        DS.create schema
          (Array.init 400 (fun _ -> Array.init 5 (fun _ -> Rng.int rng 3)))
      in
      let group _ =
        let n_preds = 1 + Rng.int rng 2 in
        List.init n_preds (fun _ ->
            let attr = Rng.int rng 5 in
            let lo = Rng.int rng 3 in
            let hi = lo + Rng.int rng (3 - lo) in
            Pred.inside ~attr ~lo ~hi)
      in
      let q =
        Acq_core.Existential.query schema (List.init n_groups group)
      in
      let costs = S.costs schema in
      List.for_all
        (fun plan -> Acq_core.Existential.consistent q ~costs plan ds)
        [
          Acq_core.Existential.naive_plan q ~costs ds;
          Acq_core.Existential.greedy_seq_plan q ~costs ds;
          Acq_core.Existential.plan ~max_depth:2 q ~costs ds;
        ])

let prop_joint_equals_view =
  QCheck2.Test.make ~count:60 ~name:"joint table = view counting"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let attrs = List.init i.n_attrs (fun a -> a) in
      let j = Acq_prob.Joint.build ds ~attrs in
      let v = Acq_prob.View.of_dataset ds in
      (* Check every query predicate's band probability and one
         conditional. *)
      Array.for_all
        (fun (p : Pred.t) ->
          let r = R.make p.Pred.lo p.Pred.hi in
          Float.abs
            (Acq_prob.Joint.prob j [ (p.Pred.attr, r) ]
            -. Acq_prob.View.range_prob v ~attr:p.Pred.attr r)
          < 1e-9)
        (Q.predicates q)
      &&
      let r0 = R.make 0 (i.domains.(0) - 1) in
      let half = R.make 0 (i.domains.(0) / 2) in
      ignore r0;
      let v' = Acq_prob.View.restrict_range v ~attr:0 half in
      let r1 = R.make 0 (i.domains.(1) / 2) in
      Float.abs
        (Acq_prob.Joint.cond_prob j ~given:[ (0, half) ] [ (1, r1) ]
        -. Acq_prob.View.range_prob v' ~attr:1 r1)
      < 1e-9)

(* Brute-force executor oracle. On a dataset that enumerates a small
   discrete domain exhaustively — every possible tuple exactly once —
   the analytic expected cost (Eq. 3) of any planner's plan must equal
   a hand-rolled average of per-tuple [Executor.run_tuple] costs over
   the whole domain, with no estimator or sweep machinery between the
   two sides. Checked with and without a board cost model, for every
   planner, against the planner's own reported cost as well. *)
let brute_instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* n_attrs = int_range 2 4 in
    let* domains = array_repeat n_attrs (int_range 2 3) in
    let* costs = array_repeat n_attrs (oneofl [ 1.0; 5.0; 20.0; 100.0 ]) in
    let* n_preds = int_range 1 n_attrs in
    let* boards =
      oneof
        [
          return None;
          (let* n_boards = int_range 1 2 in
           let* board = array_repeat n_attrs (int_range 0 (n_boards - 1)) in
           let* wakeup = array_repeat n_boards (oneofl [ 0.0; 10.0; 50.0 ]) in
           let* read = array_repeat n_attrs (oneofl [ 1.0; 5.0; 20.0 ]) in
           return (Some (board, wakeup, read)));
        ]
    in
    return ({ seed; n_attrs; domains; costs; n_preds }, boards))

(* Every tuple of the discrete domain, exactly once, in row-major
   order. *)
let cross_product domains =
  let n = Array.length domains in
  let total = Array.fold_left ( * ) 1 domains in
  Array.init total (fun idx ->
      let row = Array.make n 0 in
      let r = ref idx in
      for k = n - 1 downto 0 do
        row.(k) <- !r mod domains.(k);
        r := !r / domains.(k)
      done;
      row)

let prop_brute_force_oracle =
  QCheck2.Test.make ~count:60
    ~name:"Eq3 = brute-force run_tuple average on an exhaustive domain"
    ~print:(fun (i, _) -> instance_print i)
    brute_instance_gen
    (fun (i, boards) ->
      let schema =
        S.create
          (List.init i.n_attrs (fun k ->
               A.discrete
                 ~name:(Printf.sprintf "a%d" k)
                 ~cost:i.costs.(k) ~domain:i.domains.(k)))
      in
      let rows = cross_product i.domains in
      let ds = DS.create schema rows in
      let rng = Rng.create i.seed in
      let attrs = Rng.sample_without_replacement rng i.n_preds i.n_attrs in
      let preds =
        Array.to_list
          (Array.map
             (fun attr ->
               let k = i.domains.(attr) in
               let lo = Rng.int rng k in
               let hi = lo + Rng.int rng (k - lo) in
               if Rng.bernoulli rng 0.25 && not (lo = 0 && hi = k - 1) then
                 Pred.outside ~attr ~lo ~hi
               else Pred.inside ~attr ~lo ~hi)
             attrs)
      in
      let q = Q.create schema preds in
      let costs = S.costs schema in
      let model =
        Option.map
          (fun (board, wakeup, read) ->
            Acq_plan.Cost_model.boards ~board ~wakeup ~read)
          boards
      in
      let est = B.empirical ds in
      let opts = { options with cost_model = model } in
      List.for_all
        (fun algo ->
          let r = P.plan ~options:opts algo q ~train:ds in
          let plan = r.P.plan in
          let brute =
            Array.fold_left
              (fun acc row ->
                acc +. (Ex.run_tuple ?model q ~costs plan row).Ex.cost)
              0.0 rows
            /. float_of_int (Array.length rows)
          in
          let analytic =
            Acq_core.Expected_cost.of_plan ?model q ~costs est plan
          in
          let swept = Ex.average_cost ?model q ~costs plan ds in
          Float.abs (analytic -. brute) < 1e-9
          && Float.abs (swept -. brute) < 1e-9
          && (algo = P.Naive || Float.abs (r.P.est_cost -. brute) < 1e-9))
        [ P.Naive; P.Corr_seq; P.Heuristic; P.Exhaustive ])

(* The chain the paper argues analytically, checked at the level of
   the individual planner modules (the facade-level chain is
   prop_dominance): the optimal conditional plan never costs more than
   the optimal sequential order, which never costs more than the
   correlation-blind ranking. *)
let prop_exhaustive_leq_optseq_leq_naive =
  QCheck2.Test.make ~count:50 ~name:"exhaustive <= optseq <= naive (modules)"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let schema = DS.schema ds in
      let costs = S.costs schema in
      let est = B.empirical ds in
      let grid =
        Acq_core.Spsf.for_query ~domains:(S.domains schema) ~points_per_attr:2
          q
      in
      let _, exh = Acq_core.Exhaustive.plan q ~costs ~grid est in
      let _, seq = Acq_core.Optseq.order q ~costs est in
      let naive_order = Acq_core.Naive.order q ~costs est in
      let naive = Acq_core.Expected_cost.of_order q ~costs est naive_order in
      exh <= seq +. 1e-6 && seq <= naive +. 1e-6)

(* Re-entrancy: back-to-back runs with fresh explicit contexts produce
   the same plan and burn exactly the same effort — no memo entries or
   counters survive from one call to the next. *)
let prop_exhaustive_reentrant =
  QCheck2.Test.make ~count:50
    ~name:"exhaustive re-entrant: fresh contexts, identical runs"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let schema = DS.schema ds in
      let costs = S.costs schema in
      let est = B.empirical ds in
      let grid =
        Acq_core.Spsf.for_query ~domains:(S.domains schema) ~points_per_attr:2
          q
      in
      let run () =
        let search = Acq_core.Search.create () in
        let p, c = Acq_core.Exhaustive.plan ~search q ~costs ~grid est in
        ( p,
          c,
          Acq_core.Search.nodes_solved search,
          Acq_core.Search.memo_hits search )
      in
      let p1, c1, solved1, hits1 = run () in
      let p2, c2, solved2, hits2 = run () in
      Plan.equal p1 p2
      && Float.abs (c1 -. c2) < 1e-9
      && solved1 = solved2 && hits1 = hits2 && solved1 > 0)

(* The plan cache normalizes queries: the signature sorts predicates,
   so two queries with the same predicate set in different order hit
   the same entry (the second lookup never re-plans). *)
let prop_cache_key_order_insensitive =
  QCheck2.Test.make ~count:60
    ~name:"plan cache: predicate order does not change the entry"
    ~print:instance_print instance_gen (fun i ->
      let ds, q = build_instance i in
      let schema = DS.schema ds in
      let rng = Rng.create (i.seed + 7) in
      let shuffled =
        let arr = Array.copy (Q.predicates q) in
        for j = Array.length arr - 1 downto 1 do
          let k = Rng.int rng (j + 1) in
          let t = arr.(j) in
          arr.(j) <- arr.(k);
          arr.(k) <- t
        done;
        Array.to_list arr
      in
      let q2 = Q.create schema shuffled in
      let module C = Acq_adapt.Plan_cache in
      let sig_of q =
        C.signature ~options ~stats_epoch:3 ~algorithm:P.Heuristic q
      in
      let cache = C.create ~capacity:4 () in
      let plans = ref 0 in
      let plan q () =
        incr plans;
        P.plan ~options P.Heuristic q ~train:ds
      in
      let r1 = C.find_or_plan cache (sig_of q) (plan q) in
      let r2 = C.find_or_plan cache (sig_of q2) (plan q2) in
      String.equal (sig_of q) (sig_of q2)
      && !plans = 1
      && Plan.equal r1.P.plan r2.P.plan
      && (C.stats cache).C.hits = 1)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "planner invariants",
        List.map to_alcotest
          [
            prop_planners_consistent;
            prop_eq3_eq4;
            prop_brute_force_oracle;
            prop_dominance;
            prop_heuristic_monotone;
            prop_optseq_beats_greedy;
            prop_seq_orders_complete;
            prop_exhaustive_cost_realized;
            prop_exhaustive_leq_optseq_leq_naive;
            prop_exhaustive_reentrant;
            prop_plan_size_bounded;
            prop_pattern_probs_normalized;
          ] );
      ( "plan language",
        List.map to_alcotest
          [
            prop_serialize_roundtrip_planner;
            prop_serialize_roundtrip_random;
            prop_range_split_partitions;
            prop_predicate_truth_sound;
          ] );
      ( "foundations",
        List.map to_alcotest
          [
            prop_histogram_ranges;
            prop_percentile_bounds;
            prop_rng_sample_distinct;
            prop_csv_roundtrip;
          ] );
      ( "extensions",
        List.map to_alcotest
          [
            prop_boards_eq3_eq4;
            prop_boards_dominance;
            prop_board_awareness_never_hurts;
            prop_sliding_window_histogram;
            prop_joint_equals_view;
            prop_existential_consistent;
            prop_cache_key_order_insensitive;
          ] );
    ]
