(* Unit tests for Acq_data: discretization, attributes, schemas,
   datasets, CSV persistence, and the three dataset generators. *)

module D = Acq_data.Discretize
module A = Acq_data.Attribute
module S = Acq_data.Schema
module DS = Acq_data.Dataset
module Rng = Acq_util.Rng

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Discretize *)

let test_disc_equal_width () =
  let d = D.equal_width ~lo:0.0 ~hi:10.0 ~bins:5 in
  Alcotest.(check int) "bins" 5 (D.bins d);
  Alcotest.(check int) "value 0" 0 (D.bin_of d 0.0);
  Alcotest.(check int) "value 1.99" 0 (D.bin_of d 1.99);
  Alcotest.(check int) "value 2" 1 (D.bin_of d 2.0);
  Alcotest.(check int) "upper edge inclusive" 4 (D.bin_of d 10.0);
  Alcotest.(check int) "clamp below" 0 (D.bin_of d (-5.0));
  Alcotest.(check int) "clamp above" 4 (D.bin_of d 99.0)

let test_disc_edges () =
  let d = D.equal_width ~lo:0.0 ~hi:10.0 ~bins:5 in
  check_float "lower of bin 2" 4.0 (D.lower d 2);
  check_float "upper of bin 2" 6.0 (D.upper d 2);
  check_float "mid of bin 2" 5.0 (D.mid d 2)

let test_disc_equal_depth () =
  let rng = Rng.create 1 in
  let data = Array.init 10_000 (fun _ -> Rng.gaussian rng ~mean:0.0 ~stddev:1.0) in
  let d = D.equal_depth data ~bins:8 in
  Alcotest.(check int) "8 bins" 8 (D.bins d);
  let counts = Array.make 8 0 in
  Array.iter (fun v -> let b = D.bin_of d v in counts.(b) <- counts.(b) + 1) data;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly equal depth" true (c > 900 && c < 1600))
    counts

let test_disc_equal_depth_constant () =
  let d = D.equal_depth (Array.make 100 5.0) ~bins:4 in
  Alcotest.(check int) "bins survive constant data" 4 (D.bins d)

let test_disc_validation () =
  Alcotest.check_raises "too few edges"
    (Invalid_argument "Discretize.of_edges: need at least 2 edges") (fun () ->
      ignore (D.of_edges [| 1.0 |]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Discretize.of_edges: edges must be strictly increasing")
    (fun () -> ignore (D.of_edges [| 1.0; 1.0 |]));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Discretize.equal_width: hi <= lo") (fun () ->
      ignore (D.equal_width ~lo:1.0 ~hi:1.0 ~bins:2))

(* ------------------------------------------------------------------ *)
(* Attribute *)

let test_attr_discrete () =
  let a = A.discrete ~name:"hour" ~cost:1.0 ~domain:24 in
  Alcotest.(check string) "name" "hour" a.A.name;
  Alcotest.(check bool) "cheap" false (A.is_expensive a);
  Alcotest.(check string) "describe" "7" (A.describe_value a 7)

let test_attr_continuous () =
  let b = D.equal_width ~lo:0.0 ~hi:100.0 ~bins:10 in
  let a = A.continuous ~name:"light" ~cost:100.0 ~binner:b in
  Alcotest.(check int) "domain from binner" 10 a.A.domain;
  Alcotest.(check bool) "expensive" true (A.is_expensive a);
  Alcotest.(check string) "midpoint" "25.0" (A.describe_value a 2);
  Alcotest.(check string) "threshold" "20.0" (A.describe_threshold a 2)

let test_attr_validation () =
  Alcotest.check_raises "cost" (Invalid_argument "Attribute: cost must be positive")
    (fun () -> ignore (A.discrete ~name:"x" ~cost:0.0 ~domain:2));
  Alcotest.check_raises "domain" (Invalid_argument "Attribute: domain must be >= 2")
    (fun () -> ignore (A.discrete ~name:"x" ~cost:1.0 ~domain:1));
  Alcotest.check_raises "name" (Invalid_argument "Attribute: empty name")
    (fun () -> ignore (A.discrete ~name:"" ~cost:1.0 ~domain:2))

let test_attr_coarsen_discrete () =
  let a = A.discrete ~name:"h" ~cost:1.0 ~domain:24 in
  let c = A.coarsen a ~factor:4 in
  Alcotest.(check int) "24/4" 6 c.A.domain;
  let id = A.coarsen a ~factor:1 in
  Alcotest.(check int) "identity" 24 id.A.domain

let test_attr_coarsen_continuous () =
  let b = D.equal_width ~lo:0.0 ~hi:32.0 ~bins:32 in
  let a = A.continuous ~name:"t" ~cost:100.0 ~binner:b in
  let c = A.coarsen a ~factor:4 in
  Alcotest.(check int) "8 merged bins" 8 c.A.domain;
  (match c.A.binner with
  | Some nb ->
      check_float "edge preserved" 4.0 (D.lower nb 1);
      check_float "last edge" 32.0 (D.upper nb 7)
  | None -> Alcotest.fail "binner lost")

let test_attr_coarsen_never_below_two () =
  let a = A.discrete ~name:"v" ~cost:1.0 ~domain:8 in
  let c = A.coarsen a ~factor:100 in
  Alcotest.(check bool) "at least 2 values" true (c.A.domain >= 2)

(* ------------------------------------------------------------------ *)
(* Schema *)

let mk_schema () =
  S.create
    [
      A.discrete ~name:"id" ~cost:1.0 ~domain:4;
      A.discrete ~name:"temp" ~cost:100.0 ~domain:8;
      A.discrete ~name:"light" ~cost:50.0 ~domain:16;
    ]

let test_schema_lookup () =
  let s = mk_schema () in
  Alcotest.(check int) "arity" 3 (S.arity s);
  Alcotest.(check int) "index_of" 1 (S.index_of s "temp");
  Alcotest.(check bool) "mem" true (S.mem s "light");
  Alcotest.(check bool) "not mem" false (S.mem s "nope");
  Alcotest.check_raises "missing raises" Not_found (fun () ->
      ignore (S.index_of s "nope"))

let test_schema_arrays () =
  let s = mk_schema () in
  Alcotest.(check (array int)) "domains" [| 4; 8; 16 |] (S.domains s);
  Alcotest.(check (list int)) "expensive" [ 1; 2 ] (S.expensive_indices s);
  Alcotest.(check (list int)) "cheap" [ 0 ] (S.cheap_indices s);
  Alcotest.(check (array string)) "names" [| "id"; "temp"; "light" |] (S.names s)

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.create: duplicate attribute x") (fun () ->
      ignore
        (S.create
           [
             A.discrete ~name:"x" ~cost:1.0 ~domain:2;
             A.discrete ~name:"x" ~cost:1.0 ~domain:2;
           ]))

(* ------------------------------------------------------------------ *)
(* Dataset *)

let mk_dataset () =
  DS.create (mk_schema ())
    [| [| 0; 1; 2 |]; [| 1; 2; 3 |]; [| 2; 3; 4 |]; [| 3; 4; 5 |] |]

let test_dataset_access () =
  let ds = mk_dataset () in
  Alcotest.(check int) "nrows" 4 (DS.nrows ds);
  Alcotest.(check int) "ncols" 3 (DS.ncols ds);
  Alcotest.(check int) "get" 3 (DS.get ds 1 2);
  Alcotest.(check (array int)) "row" [| 2; 3; 4 |] (DS.row ds 2);
  Alcotest.(check (array int)) "column" [| 1; 2; 3; 4 |] (DS.column ds 1)

let test_dataset_validation () =
  let s = mk_schema () in
  Alcotest.check_raises "ragged" (Invalid_argument "Dataset.create: ragged row")
    (fun () -> ignore (DS.create s [| [| 0; 1 |] |]));
  (try
     ignore (DS.create s [| [| 0; 1; 99 |] |]);
     Alcotest.fail "expected out-of-domain failure"
   with Invalid_argument _ -> ())

let test_dataset_split () =
  let ds = mk_dataset () in
  let train, test = DS.split_by_time ds ~train_fraction:0.5 in
  Alcotest.(check int) "train rows" 2 (DS.nrows train);
  Alcotest.(check int) "test rows" 2 (DS.nrows test);
  Alcotest.(check (array int)) "train keeps head" [| 0; 1; 2 |] (DS.row train 0);
  Alcotest.(check (array int)) "test keeps tail" [| 2; 3; 4 |] (DS.row test 0)

let test_dataset_split_extremes () =
  let ds = mk_dataset () in
  let train, test = DS.split_by_time ds ~train_fraction:0.01 in
  Alcotest.(check bool) "both nonempty" true
    (DS.nrows train >= 1 && DS.nrows test >= 1);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Dataset.split_by_time: fraction must be in (0,1)")
    (fun () -> ignore (DS.split_by_time ds ~train_fraction:1.0))

let test_dataset_subsample () =
  let ds = mk_dataset () in
  let sub = DS.subsample ds (Rng.create 1) 2 in
  Alcotest.(check int) "2 rows" 2 (DS.nrows sub);
  let all = DS.subsample ds (Rng.create 1) 10 in
  Alcotest.(check int) "k >= n keeps all" 4 (DS.nrows all)

let test_dataset_append () =
  let ds = mk_dataset () in
  let both = DS.append ds ds in
  Alcotest.(check int) "rows doubled" 8 (DS.nrows both);
  Alcotest.(check (array int)) "second copy" [| 0; 1; 2 |] (DS.row both 4)

let test_dataset_coarsen () =
  let ds = mk_dataset () in
  let c = DS.coarsen ds ~factors:[| 2; 2; 4 |] in
  Alcotest.(check (array int)) "domains shrink" [| 2; 4; 4 |]
    (S.domains (DS.schema c));
  Alcotest.(check int) "cells rescaled" 1 (DS.get c 3 0);
  (* Every cell is in the new domain. *)
  for r = 0 to DS.nrows c - 1 do
    for col = 0 to DS.ncols c - 1 do
      let v = DS.get c r col in
      Alcotest.(check bool) "in domain" true
        (v >= 0 && v < (S.domains (DS.schema c)).(col))
    done
  done

let test_dataset_csv_roundtrip () =
  let ds = mk_dataset () in
  let path = Filename.temp_file "acq_ds" ".csv" in
  Acq_data.Csv_io.save path ds;
  let back = Acq_data.Csv_io.load (DS.schema ds) path in
  Sys.remove path;
  Alcotest.(check int) "rows" (DS.nrows ds) (DS.nrows back);
  for r = 0 to DS.nrows ds - 1 do
    Alcotest.(check (array int)) "row" (DS.row ds r) (DS.row back r)
  done

let test_dataset_csv_header_mismatch () =
  let ds = mk_dataset () in
  let path = Filename.temp_file "acq_ds" ".csv" in
  Acq_data.Csv_io.save path ds;
  let other =
    S.create [ A.discrete ~name:"zz" ~cost:1.0 ~domain:4 ]
  in
  (try
     ignore (Acq_data.Csv_io.load other path);
     Sys.remove path;
     Alcotest.fail "expected header mismatch"
   with Failure _ -> Sys.remove path)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_lab_gen_shape () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 2) ~rows:1000 in
  Alcotest.(check int) "rows" 1000 (DS.nrows ds);
  Alcotest.(check int) "6 attributes" 6 (DS.ncols ds);
  let s = DS.schema ds in
  Alcotest.(check (list int)) "expensive are light/temp/humidity"
    [ Acq_data.Lab_gen.idx_light; Acq_data.Lab_gen.idx_temp;
      Acq_data.Lab_gen.idx_humidity ]
    (S.expensive_indices s)

let test_lab_gen_deterministic () =
  let a = Acq_data.Lab_gen.generate (Rng.create 3) ~rows:200 in
  let b = Acq_data.Lab_gen.generate (Rng.create 3) ~rows:200 in
  for r = 0 to 199 do
    Alcotest.(check (array int)) "same rows" (DS.row a r) (DS.row b r)
  done

let test_lab_gen_night_dark () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 4) ~rows:20_000 in
  (* Zone A motes (nodeid < zone_split) must be dark at 3am. *)
  let dark = ref 0 and total = ref 0 in
  DS.iter_rows ds (fun r ->
      let h = DS.get ds r Acq_data.Lab_gen.idx_hour in
      let m = DS.get ds r Acq_data.Lab_gen.idx_nodeid in
      if h = 3 && m < Acq_data.Lab_gen.zone_split then begin
        incr total;
        if DS.get ds r Acq_data.Lab_gen.idx_light <= 1 then incr dark
      end);
  Alcotest.(check bool) "some night samples" true (!total > 10);
  Alcotest.(check bool) "zone A dark at night" true
    (float_of_int !dark /. float_of_int !total > 0.95)

let test_lab_gen_hour_light_correlated () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 5) ~rows:10_000 in
  let mi =
    Acq_prob.Mutual_info.mi ds Acq_data.Lab_gen.idx_hour
      Acq_data.Lab_gen.idx_light
  in
  Alcotest.(check bool) "MI(hour, light) strong" true (mi > 0.3)

let test_garden_gen_shape () =
  let ds5 = Acq_data.Garden_gen.generate (Rng.create 6) ~n_motes:5 ~rows:500 in
  Alcotest.(check int) "garden-5 has 16 attrs" 16 (DS.ncols ds5);
  let ds11 = Acq_data.Garden_gen.generate (Rng.create 6) ~n_motes:11 ~rows:500 in
  Alcotest.(check int) "garden-11 has 34 attrs" 34 (DS.ncols ds11);
  Alcotest.(check int) "22 expensive attrs" 22
    (List.length (S.expensive_indices (DS.schema ds11)))

let test_garden_gen_bounds () =
  Alcotest.check_raises "too many motes"
    (Invalid_argument "Garden_gen.generate: n_motes must be in [1, 11]")
    (fun () ->
      ignore (Acq_data.Garden_gen.generate (Rng.create 7) ~n_motes:12 ~rows:10))

let test_garden_gen_volt_tracks_temp () =
  let ds = Acq_data.Garden_gen.generate (Rng.create 8) ~n_motes:3 ~rows:5_000 in
  let temp = Array.map float_of_int (DS.column ds (Acq_data.Garden_gen.idx_temp 1)) in
  let volt = Array.map float_of_int (DS.column ds (Acq_data.Garden_gen.idx_volt 1)) in
  Alcotest.(check bool) "cheap voltage predicts temperature" true
    (Acq_util.Stats.pearson temp volt > 0.8)

let test_garden_gen_equal_depth () =
  let ds = Acq_data.Garden_gen.generate (Rng.create 9) ~n_motes:2 ~rows:8_000 in
  let col = DS.column ds (Acq_data.Garden_gen.idx_temp 0) in
  let counts = Array.make 16 0 in
  Array.iter (fun v -> counts.(v) <- counts.(v) + 1) col;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bins roughly equal depth" true
        (c > 8000 / 16 / 3 && c < 8000 / 16 * 3))
    counts

let test_synthetic_gen_marginals () =
  let p = { Acq_data.Synthetic_gen.n = 12; gamma = 2; sel = 0.3 } in
  let ds = Acq_data.Synthetic_gen.generate (Rng.create 10) p ~rows:20_000 in
  Alcotest.(check int) "n columns" 12 (DS.ncols ds);
  for c = 0 to 11 do
    let ones = Acq_util.Array_util.count (fun v -> v = 1) (DS.column ds c) in
    let f = float_of_int ones /. 20_000.0 in
    Alcotest.(check bool) "marginal near sel" true
      (Float.abs (f -. 0.3) < 0.03)
  done

let test_synthetic_gen_group_agreement () =
  let p = { Acq_data.Synthetic_gen.n = 6; gamma = 2; sel = 0.5 } in
  let ds = Acq_data.Synthetic_gen.generate (Rng.create 11) p ~rows:20_000 in
  (* Attributes 0,1,2 are one group: pairwise identical >= 80%. *)
  let a = DS.column ds 0 and b = DS.column ds 1 in
  let agree = ref 0 in
  Array.iteri (fun i x -> if x = b.(i) then incr agree) a;
  let f = float_of_int !agree /. 20_000.0 in
  Alcotest.(check bool) "within-group agreement ~0.85+" true (f > 0.8);
  (* Cross-group attributes are independent: agreement ~ 0.5. *)
  let c = DS.column ds 3 in
  let agree2 = ref 0 in
  Array.iteri (fun i x -> if x = c.(i) then incr agree2) a;
  let f2 = float_of_int !agree2 /. 20_000.0 in
  Alcotest.(check bool) "cross-group independent" true (Float.abs (f2 -. 0.5) < 0.05)

let test_synthetic_gen_structure () =
  let p = { Acq_data.Synthetic_gen.n = 10; gamma = 3; sel = 0.5 } in
  Alcotest.(check int) "groups of 4 + remainder" 3
    (Acq_data.Synthetic_gen.n_groups p);
  Alcotest.(check (list int)) "expensive indices skip group leaders"
    [ 1; 2; 3; 5; 6; 7; 9 ]
    (Acq_data.Synthetic_gen.expensive_indices p);
  let s = Acq_data.Synthetic_gen.schema p in
  Alcotest.(check int) "arity" 10 (S.arity s)

let test_synthetic_drifting_phases () =
  let p = { Acq_data.Synthetic_gen.n = 6; gamma = 1; sel = 0.25 } in
  let rows = 30_000 and cps = [ 10_000; 20_000 ] in
  let ds =
    Acq_data.Synthetic_gen.generate_drifting (Rng.create 12) p ~rows
      ~change_points:cps
  in
  Alcotest.(check int) "row count" rows (DS.nrows ds);
  let ones_in col lo hi =
    let c = ref 0 in
    for i = lo to hi - 1 do
      if DS.get ds i col = 1 then incr c
    done;
    float_of_int !c /. float_of_int (hi - lo)
  in
  (* Attribute 1 (g0_x1) is expensive: marginal sel in even phases,
     0.8*(1-sel) + 0.2*sel in odd ones — the change points land exactly
     where requested. *)
  let inverted = (0.8 *. 0.75) +. (0.2 *. 0.25) in
  let near msg want got =
    Alcotest.(check bool)
      (Printf.sprintf "%s (want %.2f, got %.3f)" msg want got)
      true
      (Float.abs (got -. want) < 0.03)
  in
  near "phase 0 marginal = sel" 0.25 (ones_in 1 0 10_000);
  near "phase 1 marginal shifted" inverted (ones_in 1 10_000 20_000);
  near "phase 2 back to sel" 0.25 (ones_in 1 20_000 30_000);
  (* Cheap group leaders keep their marginal through every phase. *)
  near "cheap attr unmoved in odd phase" 0.25 (ones_in 0 10_000 20_000)

let test_synthetic_drifting_correlation_flip () =
  let p = { Acq_data.Synthetic_gen.n = 6; gamma = 1; sel = 0.25 } in
  let ds =
    Acq_data.Synthetic_gen.generate_drifting (Rng.create 13) p ~rows:20_000
      ~change_points:[ 10_000 ]
  in
  let agreement lo hi =
    let agree = ref 0 in
    for i = lo to hi - 1 do
      if DS.get ds i 0 = DS.get ds i 1 then incr agree
    done;
    float_of_int !agree /. float_of_int (hi - lo)
  in
  (* Within a group, cheap and expensive agree ~0.8+ before the change
     point and anti-agree after it (the correlation sign flips). *)
  Alcotest.(check bool) "correlated in phase 0" true (agreement 0 10_000 > 0.75);
  Alcotest.(check bool) "anti-correlated in phase 1" true
    (agreement 10_000 20_000 < 0.35)

let test_synthetic_drifting_no_change_points () =
  (* No change points = plain generate with the same rng stream. *)
  let p = { Acq_data.Synthetic_gen.n = 4; gamma = 1; sel = 0.5 } in
  let a = Acq_data.Synthetic_gen.generate (Rng.create 14) p ~rows:500 in
  let b =
    Acq_data.Synthetic_gen.generate_drifting (Rng.create 14) p ~rows:500
      ~change_points:[]
  in
  for r = 0 to 499 do
    Alcotest.(check (array int)) "rows identical" (DS.row a r) (DS.row b r)
  done

let test_synthetic_drifting_validation () =
  let p = { Acq_data.Synthetic_gen.n = 4; gamma = 1; sel = 0.5 } in
  List.iter
    (fun cps ->
      try
        ignore
          (Acq_data.Synthetic_gen.generate_drifting (Rng.create 15) p
             ~rows:100 ~change_points:cps);
        Alcotest.fail "expected invalid change points"
      with Invalid_argument _ -> ())
    [ [ 0 ]; [ 100 ]; [ 150 ]; [ 50; 50 ]; [ 60; 40 ]; [ -5 ] ]

let test_dataset_coarsen_identity () =
  let ds = mk_dataset () in
  let c = DS.coarsen ds ~factors:[| 1; 1; 1 |] in
  Alcotest.(check (array int)) "domains unchanged" (S.domains (DS.schema ds))
    (S.domains (DS.schema c));
  for r = 0 to DS.nrows ds - 1 do
    Alcotest.(check (array int)) "cells unchanged" (DS.row ds r) (DS.row c r)
  done

let test_garden_index_helpers () =
  let s = Acq_data.Garden_gen.schema ~n_motes:3 in
  let names = S.names s in
  Alcotest.(check string) "time first" "time" names.(Acq_data.Garden_gen.idx_time);
  Alcotest.(check string) "temp2" "temp2" names.(Acq_data.Garden_gen.idx_temp 2);
  Alcotest.(check string) "humid1" "humid1" names.(Acq_data.Garden_gen.idx_humid 1);
  Alcotest.(check string) "volt0" "volt0" names.(Acq_data.Garden_gen.idx_volt 0)

let test_synthetic_invalid_params () =
  List.iter
    (fun p ->
      try
        ignore (Acq_data.Synthetic_gen.schema p);
        Alcotest.fail "expected invalid params"
      with Invalid_argument _ -> ())
    [
      { Acq_data.Synthetic_gen.n = 1; gamma = 1; sel = 0.5 };
      { Acq_data.Synthetic_gen.n = 4; gamma = 0; sel = 0.5 };
      { Acq_data.Synthetic_gen.n = 4; gamma = 1; sel = 0.0 };
      { Acq_data.Synthetic_gen.n = 4; gamma = 1; sel = 1.0 };
    ]

let test_lab_voltage_tracks_temp () =
  let ds = Acq_data.Lab_gen.generate (Rng.create 12) ~rows:12_000 in
  let temp = Array.map float_of_int (DS.column ds Acq_data.Lab_gen.idx_temp) in
  let volt =
    Array.map float_of_int (DS.column ds Acq_data.Lab_gen.idx_voltage)
  in
  (* Weak positive coupling (battery chemistry), diluted by drain. *)
  Alcotest.(check bool) "positive correlation" true
    (Acq_util.Stats.pearson temp volt > 0.1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "data"
    [
      ( "discretize",
        [
          Alcotest.test_case "equal width" `Quick test_disc_equal_width;
          Alcotest.test_case "edges" `Quick test_disc_edges;
          Alcotest.test_case "equal depth" `Quick test_disc_equal_depth;
          Alcotest.test_case "equal depth constant" `Quick
            test_disc_equal_depth_constant;
          Alcotest.test_case "validation" `Quick test_disc_validation;
        ] );
      ( "attribute",
        [
          Alcotest.test_case "discrete" `Quick test_attr_discrete;
          Alcotest.test_case "continuous" `Quick test_attr_continuous;
          Alcotest.test_case "validation" `Quick test_attr_validation;
          Alcotest.test_case "coarsen discrete" `Quick test_attr_coarsen_discrete;
          Alcotest.test_case "coarsen continuous" `Quick
            test_attr_coarsen_continuous;
          Alcotest.test_case "coarsen floor" `Quick
            test_attr_coarsen_never_below_two;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "arrays" `Quick test_schema_arrays;
          Alcotest.test_case "duplicate" `Quick test_schema_duplicate;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "access" `Quick test_dataset_access;
          Alcotest.test_case "validation" `Quick test_dataset_validation;
          Alcotest.test_case "split" `Quick test_dataset_split;
          Alcotest.test_case "split extremes" `Quick test_dataset_split_extremes;
          Alcotest.test_case "subsample" `Quick test_dataset_subsample;
          Alcotest.test_case "append" `Quick test_dataset_append;
          Alcotest.test_case "coarsen" `Quick test_dataset_coarsen;
          Alcotest.test_case "csv roundtrip" `Quick test_dataset_csv_roundtrip;
          Alcotest.test_case "csv header mismatch" `Quick
            test_dataset_csv_header_mismatch;
          Alcotest.test_case "coarsen identity" `Quick
            test_dataset_coarsen_identity;
        ] );
      ( "generators",
        [
          Alcotest.test_case "lab shape" `Quick test_lab_gen_shape;
          Alcotest.test_case "lab deterministic" `Quick test_lab_gen_deterministic;
          Alcotest.test_case "lab night darkness" `Quick test_lab_gen_night_dark;
          Alcotest.test_case "lab hour-light MI" `Quick
            test_lab_gen_hour_light_correlated;
          Alcotest.test_case "garden shape" `Quick test_garden_gen_shape;
          Alcotest.test_case "garden bounds" `Quick test_garden_gen_bounds;
          Alcotest.test_case "garden volt-temp" `Quick
            test_garden_gen_volt_tracks_temp;
          Alcotest.test_case "garden equal depth" `Quick
            test_garden_gen_equal_depth;
          Alcotest.test_case "synthetic marginals" `Quick
            test_synthetic_gen_marginals;
          Alcotest.test_case "synthetic agreement" `Quick
            test_synthetic_gen_group_agreement;
          Alcotest.test_case "synthetic structure" `Quick
            test_synthetic_gen_structure;
          Alcotest.test_case "garden index helpers" `Quick
            test_garden_index_helpers;
          Alcotest.test_case "synthetic invalid params" `Quick
            test_synthetic_invalid_params;
          Alcotest.test_case "drifting phases" `Quick
            test_synthetic_drifting_phases;
          Alcotest.test_case "drifting correlation flip" `Quick
            test_synthetic_drifting_correlation_flip;
          Alcotest.test_case "drifting no change points" `Quick
            test_synthetic_drifting_no_change_points;
          Alcotest.test_case "drifting validation" `Quick
            test_synthetic_drifting_validation;
          Alcotest.test_case "lab voltage-temp coupling" `Quick
            test_lab_voltage_tracks_temp;
        ] );
    ]
